// Package supervise is the high-availability layer around the CCP agent: a
// warm standby that consumes flow-state snapshot deltas and can be promoted
// to a full agent, and a supervisor that health-checks the running agent
// with heartbeat probes and drives failover when it dies, wedges, or slows
// past its latency budget.
//
// The paper's premise is that congestion control logic belongs off the
// datapath; the cost is that the agent process becomes a failure domain
// shared by every flow. PR 6 gave each datapath a local fail-safe (fallback
// congestion control when the agent goes quiet). This package restores the
// *off*-datapath half: the supervisor notices an unhealthy agent within a
// few probe intervals and swaps in a standby whose per-flow state is at
// most one snapshot interval stale, so flows resume fresh agent decisions
// within a handful of RTTs instead of riding the in-datapath fallback.
//
// Everything here runs on a netsim.Clock with no goroutines and no maps
// feeding ordered sinks, so supervised simulations stay bit-identical per
// seed (the ccp-lint simdeterminism pass covers this package).
package supervise

import (
	"sort"
	"sync"
	"time"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Handler is the message sink a supervisor probes — structurally the same
// contract as bridge.Handler / faults.AgentHandler: m is borrowed for the
// duration of the call. In a supervised deployment this is the
// faults.AgentInjector wrapping the live agent, so probes experience the
// same pauses, delays, and drops the datapath traffic does.
type Handler interface {
	HandleMessage(m proto.Msg, reply func(proto.Msg) error)
}

// State is the supervisor's judgment of the agent.
type State int

// Health states, in escalation order.
const (
	// Healthy: echoes arrive within budget.
	Healthy State = iota
	// Suspect: latency is drifting up or a probe is outstanding; no action
	// yet, but recovery now requires clearing the stricter exit threshold
	// (hysteresis, so a borderline agent cannot flap).
	Suspect
	// Failed: the miss budget or the latency budget is blown; OnFailover
	// has fired (subject to cooldown).
	Failed
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	}
	return "failed"
}

// Config configures a Supervisor.
type Config struct {
	// Clock schedules probe ticks (the simulator clock in experiments).
	// Required.
	Clock netsim.Clock
	// Handler receives the probes. Required.
	Handler Handler
	// Interval is the probe period (default 10ms).
	Interval time.Duration
	// Alpha is the EWMA gain on latency samples (default 0.3).
	Alpha float64
	// LatencyBudget: when the latency EWMA exceeds this, the agent is
	// Failed even though it still answers — a uniformly slow agent is as
	// useless to a datapath as a dead one (its decisions arrive stale).
	// Default 100ms.
	LatencyBudget time.Duration
	// MissBudget is the number of consecutive probe ticks with the oldest
	// probe still unanswered before the agent is Failed (default 3).
	MissBudget int
	// SuspectFraction: EWMA above SuspectFraction×LatencyBudget moves a
	// Healthy agent to Suspect (default 0.5).
	SuspectFraction float64
	// RecoverFraction: a Suspect or Failed agent returns to Healthy only
	// once every probe is answered and the EWMA is below
	// RecoverFraction×LatencyBudget (default 0.25). The gap between the
	// two fractions is the hysteresis band.
	RecoverFraction float64
	// FailoverCooldown is the minimum spacing between OnFailover firings
	// (default 10×Interval), so a flapping environment cannot thrash
	// promotions.
	FailoverCooldown time.Duration
	// OnFailover runs when the agent transitions to Failed (outside
	// cooldown). Typically: promote the standby and point the injector at
	// it. Nil means monitor-only.
	OnFailover func()
}

// Stats counts supervisor activity.
type Stats struct {
	ProbesSent int
	Echoes     int
	// Misses counts probe ticks that found the oldest probe unanswered.
	Misses    int
	Suspects  int
	Failovers int
	// Recoveries counts transitions back to Healthy (via echo quality, not
	// Adopt).
	Recoveries int
}

// Supervisor health-checks an agent by sending proto.Heartbeat probes
// through its message path and scoring the echoes: an EWMA of
// request→response latency catches the slow-agent failure mode, and a
// consecutive-miss counter catches the dead/paused one. Crossing either
// budget fires OnFailover.
//
// Not safe for concurrent use: ticks, echoes, and Adopt must come from one
// scheduling domain (the simulator event loop).
type Supervisor struct {
	cfg   Config
	timer netsim.Timer

	state   State
	ewma    float64 // seconds
	samples int
	misses  int
	seq     uint32
	// Oldest unanswered probe; age folds into the EWMA each tick so a
	// silent agent's score climbs even though no echo ever arrives.
	unechoedSeq   uint32
	unechoedAt    time.Duration
	haveUnechoed  bool
	cooldownUntil time.Duration
	haveCooldown  bool
	scratch       proto.Heartbeat
	stats         Stats
}

// NewSupervisor validates cfg, applies defaults, and returns a stopped
// supervisor; call Start to begin probing. Panics on a missing Clock or
// Handler (deployments construct these statically).
func NewSupervisor(cfg Config) *Supervisor {
	if cfg.Clock == nil {
		panic("supervise: Config.Clock is required")
	}
	if cfg.Handler == nil {
		panic("supervise: Config.Handler is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.LatencyBudget <= 0 {
		cfg.LatencyBudget = 100 * time.Millisecond
	}
	if cfg.MissBudget <= 0 {
		cfg.MissBudget = 3
	}
	if cfg.SuspectFraction <= 0 || cfg.SuspectFraction > 1 {
		cfg.SuspectFraction = 0.5
	}
	if cfg.RecoverFraction <= 0 || cfg.RecoverFraction >= cfg.SuspectFraction {
		cfg.RecoverFraction = cfg.SuspectFraction / 2
	}
	if cfg.FailoverCooldown <= 0 {
		cfg.FailoverCooldown = 10 * cfg.Interval
	}
	return &Supervisor{cfg: cfg}
}

// Start arms the probe loop; the first probe fires one interval from now.
func (s *Supervisor) Start() {
	if s.timer != nil {
		return
	}
	s.timer = s.cfg.Clock.AfterFunc(s.cfg.Interval, s.tick)
}

// Stop cancels the probe loop.
func (s *Supervisor) Stop() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// State returns the current health judgment.
func (s *Supervisor) State() State { return s.state }

// Stats returns a snapshot of the activity counters.
func (s *Supervisor) Stats() Stats { return s.stats }

// Latency returns the current latency EWMA (zero before any sample).
func (s *Supervisor) Latency() time.Duration {
	return time.Duration(s.ewma * float64(time.Second))
}

// Adopt resets the health state after the orchestrator has swapped a fresh
// agent behind the handler (promotion or restart): score, misses, and
// outstanding probes all clear, so the new agent is judged on its own
// echoes rather than its predecessor's corpse. The failover cooldown is
// preserved — it spaces promotions, not probes.
func (s *Supervisor) Adopt() {
	s.state = Healthy
	s.ewma = 0
	s.samples = 0
	s.misses = 0
	s.haveUnechoed = false
}

// tick sends one probe and scores the silence since the last one.
func (s *Supervisor) tick() {
	s.timer = nil
	now := s.cfg.Clock.Now()
	if s.haveUnechoed {
		// The oldest probe is still unanswered: fold its age in as a
		// latency sample (clamped, so one long outage does not poison the
		// EWMA for minutes after recovery) and count the miss.
		s.misses++
		s.stats.Misses++
		s.foldSample((now - s.unechoedAt).Seconds())
	}
	s.seq++
	if s.seq == 0 {
		s.seq = 1
	}
	if !s.haveUnechoed {
		s.unechoedSeq = s.seq
		s.unechoedAt = now
		s.haveUnechoed = true
	}
	s.scratch = proto.Heartbeat{Seq: s.seq, SentAt: now.Seconds()}
	s.stats.ProbesSent++
	s.cfg.Handler.HandleMessage(&s.scratch, s.echo)
	s.evaluate(s.cfg.Clock.Now())
	s.timer = s.cfg.Clock.AfterFunc(s.cfg.Interval, s.tick)
}

// echo scores one heartbeat reply. It is the reply func handed to the
// handler, so with a healthy synchronous agent it runs inside tick's
// HandleMessage call; with a slow or paused one it runs when the delayed
// or replayed delivery fires.
func (s *Supervisor) echo(m proto.Msg) error {
	hb, ok := m.(*proto.Heartbeat)
	if !ok {
		return nil // probes carry no flow, so nothing else should arrive
	}
	now := s.cfg.Clock.Now()
	s.stats.Echoes++
	s.misses = 0
	lat := now.Seconds() - hb.SentAt
	s.foldSample(lat)
	if s.haveUnechoed && (hb.Seq == s.unechoedSeq || proto.SeqNewer(hb.Seq, s.unechoedSeq)) {
		s.haveUnechoed = false
	}
	s.evaluate(now)
	return nil
}

// foldSample merges one latency observation (seconds) into the EWMA,
// clamped at twice the budget.
func (s *Supervisor) foldSample(lat float64) {
	if lat < 0 {
		lat = 0
	}
	if max := 2 * s.cfg.LatencyBudget.Seconds(); lat > max {
		lat = max
	}
	if s.samples == 0 {
		s.ewma = lat
	} else {
		s.ewma = s.cfg.Alpha*lat + (1-s.cfg.Alpha)*s.ewma
	}
	s.samples++
}

// evaluate runs the Healthy/Suspect/Failed state machine.
func (s *Supervisor) evaluate(now time.Duration) {
	budget := s.cfg.LatencyBudget.Seconds()
	blown := s.misses >= s.cfg.MissBudget || (s.samples > 0 && s.ewma > budget)
	switch {
	case blown:
		if s.state != Failed {
			s.state = Failed
			if s.cfg.OnFailover != nil && (!s.haveCooldown || now >= s.cooldownUntil) {
				s.stats.Failovers++
				s.cooldownUntil = now + s.cfg.FailoverCooldown
				s.haveCooldown = true
				s.cfg.OnFailover()
			}
		}
	case s.state == Healthy:
		if s.misses > 0 || (s.samples > 0 && s.ewma > s.cfg.SuspectFraction*budget) {
			s.state = Suspect
			s.stats.Suspects++
		}
	default: // Suspect or Failed: recovery needs the stricter exit gate
		if s.misses == 0 && !s.haveUnechoed && s.samples > 0 &&
			s.ewma < s.cfg.RecoverFraction*budget {
			s.state = Healthy
			s.stats.Recoveries++
		}
	}
}

// StandbyStats counts standby activity.
type StandbyStats struct {
	// Applied counts live-flow snapshots stored (updates included);
	// Removed counts tombstone deletions.
	Applied int
	Removed int
	// RestoreErrors counts snapshots Promote could not restore (the flow
	// is skipped; the rest of the table still promotes).
	RestoreErrors int
	// Unexpected counts non-snapshot messages on the replication stream.
	Unexpected int
}

// Standby is the warm half of the HA pair: a snapshot store that tracks the
// primary agent's per-flow state and can be promoted into a live agent.
// Feed it with Apply (in-process replication, e.g. the harness snapshot
// pump) or ServeTransport (wire replication over an ipc.Transport).
//
// Standby methods are mutex-guarded: a transport-fed standby receives from
// a socket goroutine while promotion happens elsewhere.
type Standby struct {
	mu    sync.Mutex
	snaps map[uint32]*proto.Snapshot
	stats StandbyStats
}

// NewStandby returns an empty standby.
func NewStandby() *Standby {
	return &Standby{snaps: make(map[uint32]*proto.Snapshot)}
}

// Apply folds one snapshot into the store: a tombstone deletes the flow,
// anything else replaces it. snap is borrowed for the duration of the call
// (it is cloned before retention), matching the SnapshotInto sink contract.
func (s *Standby) Apply(snap *proto.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Closed {
		if _, ok := s.snaps[snap.SID]; ok {
			delete(s.snaps, snap.SID)
			s.stats.Removed++
		}
		return
	}
	s.snaps[snap.SID] = proto.Clone(snap).(*proto.Snapshot)
	s.stats.Applied++
}

// FlowCount returns the number of flows currently tracked.
func (s *Standby) FlowCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps)
}

// Stats returns a snapshot of the activity counters.
func (s *Standby) Stats() StandbyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Promote builds a live agent from the store: a fresh core.Agent with every
// tracked flow restored, in ascending SID order so promotion is
// deterministic. A snapshot that fails to restore (bad program bytes) is
// skipped and counted; one poisoned flow must not block failover for the
// rest. The store is left intact — the caller decides whether this standby
// keeps replicating or retires.
func (s *Standby) Promote(cfg core.AgentConfig) (*core.Agent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return nil, err
	}
	sids := make([]uint32, len(s.snaps))
	i := 0
	for sid := range s.snaps {
		sids[i] = sid
		i++
	}
	sort.Slice(sids, func(a, b int) bool { return sids[a] < sids[b] })
	for _, sid := range sids {
		if err := agent.RestoreFlow(s.snaps[sid]); err != nil {
			s.stats.RestoreErrors++
		}
	}
	return agent, nil
}

// HandleMessage feeds one replication message: snapshots (bare or batched)
// apply; anything else counts as unexpected. The reply func is unused —
// replication is one-way. The signature matches Handler so a standby can
// sit directly behind a bridge or injector in tests.
func (s *Standby) HandleMessage(m proto.Msg, _ func(proto.Msg) error) {
	switch v := m.(type) {
	case *proto.Snapshot:
		s.Apply(v)
	case *proto.Batch:
		for _, sub := range v.Msgs {
			if snap, ok := sub.(*proto.Snapshot); ok {
				s.Apply(snap)
			} else {
				s.mu.Lock()
				s.stats.Unexpected++
				s.mu.Unlock()
			}
		}
	default:
		s.mu.Lock()
		s.stats.Unexpected++
		s.mu.Unlock()
	}
}

// ServeTransport consumes a replication stream from t until Recv fails:
// each frame is decoded and folded into the store. This is the standby
// agent's main loop in a two-process deployment (ccp-agent -standby).
func (s *Standby) ServeTransport(t ipc.Transport) error {
	var dec proto.Decoder
	for {
		f, err := ipc.RecvFrame(t)
		if err != nil {
			return err
		}
		m, err := dec.Unmarshal(f.B)
		if err != nil {
			f.Release()
			s.mu.Lock()
			s.stats.Unexpected++
			s.mu.Unlock()
			continue
		}
		s.HandleMessage(m, nil)
		f.Release()
	}
}

// Replicate streams one snapshot pass from a live agent onto t, marshalling
// each snapshot as its own frame. full=true replays the entire flow table
// (what a freshly attached standby needs once); full=false sends the
// incremental delta. Returns the number of frames sent.
func Replicate(a *core.Agent, full bool, t ipc.Transport) (int, error) {
	return a.SnapshotInto(full, func(snap *proto.Snapshot) error {
		f, err := proto.MarshalFrame(snap)
		if err != nil {
			return err
		}
		err = t.Send(f.B)
		f.Release()
		return err
	})
}
