package supervise

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/faults"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
)

// echoHandler answers heartbeats synchronously, like a healthy agent.
type echoHandler struct {
	echoes int
}

func (e *echoHandler) HandleMessage(m proto.Msg, reply func(proto.Msg) error) {
	if hb, ok := m.(*proto.Heartbeat); ok {
		e.echoes++
		if reply != nil {
			reply(&proto.Heartbeat{SID: hb.SID, Seq: hb.Seq, SentAt: hb.SentAt})
		}
	}
}

func newTestSupervisor(sim *netsim.Sim, h Handler, onFailover func()) *Supervisor {
	return NewSupervisor(Config{
		Clock:         sim,
		Handler:       h,
		Interval:      10 * time.Millisecond,
		LatencyBudget: 100 * time.Millisecond,
		MissBudget:    3,
		OnFailover:    onFailover,
	})
}

func TestSupervisorHealthyStaysHealthy(t *testing.T) {
	sim := netsim.New(1)
	inner := &echoHandler{}
	failovers := 0
	sup := newTestSupervisor(sim, inner, func() { failovers++ })
	sup.Start()
	sim.Run(1 * time.Second)
	sup.Stop()

	if got := sup.State(); got != Healthy {
		t.Fatalf("state = %v, want healthy", got)
	}
	if failovers != 0 {
		t.Fatalf("failovers = %d, want 0", failovers)
	}
	st := sup.Stats()
	if st.ProbesSent == 0 || st.Echoes != st.ProbesSent {
		t.Fatalf("probes=%d echoes=%d, want all echoed", st.ProbesSent, st.Echoes)
	}
	if st.Misses != 0 || st.Suspects != 0 {
		t.Fatalf("misses=%d suspects=%d, want 0", st.Misses, st.Suspects)
	}
}

// A killed agent must blow the miss budget and fire failover within a few
// probe intervals; after the orchestrator restarts the handler and Adopts,
// the supervisor judges the replacement on its own echoes.
func TestSupervisorKillFiresFailover(t *testing.T) {
	sim := netsim.New(1)
	inner := &echoHandler{}
	inj := faults.NewAgentInjector(inner, func(d time.Duration, fn func()) {
		sim.Schedule(d, fn)
	})
	replacement := &echoHandler{}
	var sup *Supervisor
	var failoverAt time.Duration
	failovers := 0
	sup = newTestSupervisor(sim, inj, func() {
		failovers++
		failoverAt = sim.Now()
		inj.Restart(replacement)
		sup.Adopt()
	})
	sup.Start()
	killAt := 500 * time.Millisecond
	sim.Schedule(killAt, inj.Kill)
	sim.Run(2 * time.Second)
	sup.Stop()

	if failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failovers)
	}
	// MissBudget misses at one per interval, plus the interval the probe was
	// in flight: detection within (MissBudget+2) intervals.
	if limit := killAt + 5*10*time.Millisecond; failoverAt > limit {
		t.Fatalf("failover at %v, want ≤ %v", failoverAt, limit)
	}
	if got := sup.State(); got != Healthy {
		t.Fatalf("state after restart = %v, want healthy", got)
	}
	if replacement.echoes == 0 {
		t.Fatal("replacement never probed after failover")
	}
}

// A uniformly slow agent still answers every probe, so the miss budget
// never trips — the latency EWMA must catch it. After it heals, the
// supervisor recovers through the hysteresis gate without a restart.
func TestSupervisorSlowAgentFailsOverViaLatency(t *testing.T) {
	sim := netsim.New(1)
	inner := &echoHandler{}
	inj := faults.NewAgentInjector(inner, func(d time.Duration, fn func()) {
		sim.Schedule(d, fn)
	})
	failovers := 0
	sup := NewSupervisor(Config{
		Clock:         sim,
		Handler:       inj,
		Interval:      50 * time.Millisecond,
		LatencyBudget: 100 * time.Millisecond,
		MissBudget:    5, // echoes arrive within 3 intervals: misses never trip
		OnFailover:    func() { failovers++ },
	})
	sup.Start()
	sim.Schedule(500*time.Millisecond, func() { inj.SlowDown(150 * time.Millisecond) })
	sim.Schedule(2*time.Second, func() { inj.SlowDown(0) })
	sim.Run(4 * time.Second)
	sup.Stop()

	if failovers != 1 {
		t.Fatalf("failovers = %d, want exactly 1 (cooldown + hysteresis)", failovers)
	}
	st := sup.Stats()
	if st.Echoes == 0 {
		t.Fatal("no echoes: slow agent should still answer")
	}
	if got := sup.State(); got != Healthy {
		t.Fatalf("state after heal = %v (ewma %v), want healthy", got, sup.Latency())
	}
	if st.Recoveries == 0 {
		t.Fatal("expected a recovery after the slowdown lifted")
	}
}

// Latency in the band between the suspect and failure thresholds must park
// the supervisor in Suspect — no failover — and recovery requires clearing
// the stricter exit threshold.
func TestSupervisorSuspectHysteresis(t *testing.T) {
	sim := netsim.New(1)
	inner := &echoHandler{}
	inj := faults.NewAgentInjector(inner, func(d time.Duration, fn func()) {
		sim.Schedule(d, fn)
	})
	failovers := 0
	sup := NewSupervisor(Config{
		Clock:         sim,
		Handler:       inj,
		Interval:      50 * time.Millisecond,
		LatencyBudget: 100 * time.Millisecond,
		MissBudget:    5,
		OnFailover:    func() { failovers++ },
	})
	sawSuspect := false
	sim.Schedule(500*time.Millisecond, func() { inj.SlowDown(60 * time.Millisecond) })
	sim.Schedule(1500*time.Millisecond, func() {
		sawSuspect = sup.State() == Suspect
		inj.SlowDown(0)
	})
	sup.Start()
	sim.Run(3 * time.Second)
	sup.Stop()

	if !sawSuspect {
		t.Fatal("60ms latency against a 100ms budget should read as suspect")
	}
	if failovers != 0 {
		t.Fatalf("failovers = %d, want 0: suspect must not trigger failover", failovers)
	}
	if got := sup.State(); got != Healthy {
		t.Fatalf("state after heal = %v, want healthy", got)
	}
}

// buildPrimary returns an agent with two live flows (reno and cubic).
func buildPrimary(t *testing.T) *core.Agent {
	t.Helper()
	agent, err := core.NewAgent(core.AgentConfig{
		Registry:   algorithms.NewRegistry(),
		DefaultAlg: "cubic",
	})
	if err != nil {
		t.Fatal(err)
	}
	reply := func(proto.Msg) error { return nil }
	agent.HandleMessage(&proto.Create{SID: 1, Seq: 1, MSS: 1460, InitCwnd: 14600,
		SrcAddr: "10.0.0.1:1", DstAddr: "10.0.0.2:2", Alg: "reno"}, reply)
	agent.HandleMessage(&proto.Create{SID: 2, Seq: 1, MSS: 1460, InitCwnd: 14600,
		SrcAddr: "10.0.0.1:3", DstAddr: "10.0.0.2:4", Alg: "cubic"}, reply)
	return agent
}

func applySink(sb *Standby) func(*proto.Snapshot) error {
	return func(snap *proto.Snapshot) error {
		sb.Apply(snap)
		return nil
	}
}

func TestStandbyApplyAndPromote(t *testing.T) {
	primary := buildPrimary(t)
	sb := NewStandby()
	n, err := primary.SnapshotInto(true, applySink(sb))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || sb.FlowCount() != 2 {
		t.Fatalf("snapshots=%d standby flows=%d, want 2/2", n, sb.FlowCount())
	}

	promoted, err := sb.Promote(core.AgentConfig{
		Registry:   algorithms.NewRegistry(),
		DefaultAlg: "cubic",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := promoted.FlowCount(); got != 2 {
		t.Fatalf("promoted agent has %d flows, want 2", got)
	}
	if got := promoted.Stats().Restores; got != 2 {
		t.Fatalf("restores = %d, want 2", got)
	}

	// The promoted agent's state must match the primary's: same algorithms,
	// programs, and exported registers, with control sequences skipped ahead
	// so post-snapshot primary decisions cannot shadow standby ones.
	prim := map[uint32]*proto.Snapshot{}
	_, err = primary.SnapshotInto(true, func(s *proto.Snapshot) error {
		prim[s.SID] = proto.Clone(s).(*proto.Snapshot)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = promoted.SnapshotInto(true, func(s *proto.Snapshot) error {
		p, ok := prim[s.SID]
		if !ok {
			t.Fatalf("promoted flow %d missing on primary", s.SID)
		}
		if s.Alg != p.Alg || s.MSS != p.MSS || s.SrcAddr != p.SrcAddr {
			t.Fatalf("flow %d identity mismatch: %+v vs %+v", s.SID, s, p)
		}
		if string(s.Prog) != string(p.Prog) {
			t.Fatalf("flow %d program diverged after restore", s.SID)
		}
		if len(s.State) != len(p.State) {
			t.Fatalf("flow %d state length %d vs %d", s.SID, len(s.State), len(p.State))
		}
		for i := range s.State {
			if s.State[i] != p.State[i] {
				t.Fatalf("flow %d state[%d] = %v, want %v", s.SID, i, s.State[i], p.State[i])
			}
		}
		if !proto.SeqNewer(s.CtrlSeq, p.CtrlSeq) {
			t.Fatalf("flow %d restored ctrlSeq %d not ahead of primary's %d",
				s.SID, s.CtrlSeq, p.CtrlSeq)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStandbyTombstoneRemoves(t *testing.T) {
	primary := buildPrimary(t)
	sb := NewStandby()
	if _, err := primary.SnapshotInto(true, applySink(sb)); err != nil {
		t.Fatal(err)
	}
	primary.HandleMessage(&proto.Close{SID: 1}, nil)
	n, err := primary.SnapshotInto(false, applySink(sb))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("incremental pass emitted %d messages, want 1 tombstone", n)
	}
	if got := sb.FlowCount(); got != 1 {
		t.Fatalf("standby flows = %d after tombstone, want 1", got)
	}
	if got := sb.Stats().Removed; got != 1 {
		t.Fatalf("removed = %d, want 1", got)
	}
}

// Replication over a real ipc.Transport: frames stream through a ChanPair
// and the standby's ServeTransport loop, and the result promotes
// identically to in-process Apply.
func TestStandbyServeTransport(t *testing.T) {
	primary := buildPrimary(t)
	a, b := ipc.ChanPair(64)
	n, err := Replicate(primary, true, a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replicated %d frames, want 2", n)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	sb := NewStandby()
	if err := sb.ServeTransport(b); err != ipc.ErrClosed {
		t.Fatalf("ServeTransport error = %v, want ErrClosed after drain", err)
	}
	if got := sb.FlowCount(); got != 2 {
		t.Fatalf("standby flows = %d, want 2", got)
	}
	if got := sb.Stats().Unexpected; got != 0 {
		t.Fatalf("unexpected frames = %d, want 0", got)
	}
	promoted, err := sb.Promote(core.AgentConfig{
		Registry:   algorithms.NewRegistry(),
		DefaultAlg: "cubic",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := promoted.FlowCount(); got != 2 {
		t.Fatalf("promoted agent has %d flows, want 2", got)
	}
}
