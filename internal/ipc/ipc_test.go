package ipc

import (
	"bytes"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestChanPairRoundTrip(t *testing.T) {
	a, b := ChanPair(4)
	defer a.Close()
	defer b.Close()
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if err := b.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil || string(got) != "world" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestChanPairCopiesOnSend(t *testing.T) {
	a, b := ChanPair(1)
	defer a.Close()
	defer b.Close()
	msg := []byte("abc")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X'
	got, _ := b.Recv()
	if string(got) != "abc" {
		t.Fatalf("send did not copy: %q", got)
	}
}

func TestChanPairClose(t *testing.T) {
	a, b := ChanPair(0)
	a.Close()
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send on closed: %v", err)
	}
	if _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("recv from closed peer: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestChanPairCloseUnblocksRecv(t *testing.T) {
	a, b := ChanPair(0)
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("err=%v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestChanPairDrainsQueuedAfterPeerClose(t *testing.T) {
	a, b := ChanPair(4)
	defer b.Close()
	if err := a.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv()
	if err != nil || string(got) != "queued" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestChanPairDrainsEveryQueuedAfterPeerClose(t *testing.T) {
	// Regression: with several messages in flight at close time, every one
	// must be delivered before ErrClosed — none may be lost to the race
	// between the queued-message and peer-closed select cases. Repeat to
	// cover select's random case choice.
	for trial := 0; trial < 200; trial++ {
		a, b := ChanPair(8)
		for i := byte(0); i < 5; i++ {
			if err := a.Send([]byte{i}); err != nil {
				t.Fatal(err)
			}
		}
		a.Close()
		for i := byte(0); i < 5; i++ {
			got, err := b.Recv()
			if err != nil {
				t.Fatalf("trial %d: lost message %d: %v", trial, i, err)
			}
			if len(got) != 1 || got[0] != i {
				t.Fatalf("trial %d: got %v, want [%d]", trial, got, i)
			}
		}
		if _, err := b.Recv(); err != ErrClosed {
			t.Fatalf("trial %d: drained transport returned %v", trial, err)
		}
		b.Close()
	}
}

func TestUnixStreamRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ccp.sock")
	ln, err := ListenUnix(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var server Transport
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = NewStream(conn)
		go Echo(server)
	}()

	client, err := DialUnix(path)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wg.Wait()
	defer server.Close()

	for _, size := range []int{1, 100, 65536} {
		msg := bytes.Repeat([]byte{0x5A}, size)
		if err := client.Send(msg); err != nil {
			t.Fatal(err)
		}
		got, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d: echo mismatch", size)
		}
	}
}

func TestUnixStreamPreservesBoundaries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.sock")
	ln, err := ListenUnix(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptedc := make(chan Transport, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		acceptedc <- NewStream(conn)
	}()
	client, err := DialUnix(path)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acceptedc
	defer server.Close()

	// Several back-to-back sends must arrive as distinct messages.
	msgs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for _, m := range msgs {
		if err := client.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
}

func TestStreamRejectsOversizedFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	tr := NewStream(c1)
	big := make([]byte, MaxFrame+1)
	if err := tr.Send(big); err == nil {
		t.Fatal("oversized send accepted")
	}
	// A corrupt length prefix must be rejected without huge allocation.
	go c2.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := tr.Recv(); err == nil {
		t.Fatal("oversized frame header accepted")
	}
}

func TestDgramPairRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, b, err := DgramPair(filepath.Join(dir, "a.sock"), filepath.Join(dir, "b.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if err := a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil || string(got) != "ping" {
		t.Fatalf("got %q, %v", got, err)
	}
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil || string(got) != "pong" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestDgramPreservesBoundaries(t *testing.T) {
	dir := t.TempDir()
	a, b, err := DgramPair(filepath.Join(dir, "a.sock"), filepath.Join(dir, "b.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	for _, m := range []string{"x", "yy", "zzz"} {
		if err := a.Send([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"x", "yy", "zzz"} {
		got, err := b.Recv()
		if err != nil || string(got) != want {
			t.Fatalf("got %q, %v; want %q", got, err, want)
		}
	}
}

func TestDgramPairPathCollision(t *testing.T) {
	dir := t.TempDir()
	pa, pb := filepath.Join(dir, "a.sock"), filepath.Join(dir, "b.sock")
	a, b, err := DgramPair(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if _, _, err := DgramPair(pa, pb); err == nil {
		t.Fatal("rebinding bound paths succeeded")
	}
}

func TestMeasureRTTChan(t *testing.T) {
	a, b := ChanPair(1)
	defer a.Close()
	go Echo(b)
	s, err := MeasureRTT(a, 200, 20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 200 {
		t.Fatalf("samples=%d", s.Len())
	}
	if s.Min() <= 0 {
		t.Fatalf("non-positive RTT %v", s.Min())
	}
	if s.Median() > float64(50*time.Millisecond) {
		t.Fatalf("implausible in-process RTT median %v", time.Duration(s.Median()))
	}
}

func TestMeasureRTTUnixStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rtt.sock")
	ln, err := ListenUnix(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		Echo(NewStream(conn))
	}()
	client, err := DialUnix(path)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	s, err := MeasureRTT(client, 100, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 || s.Min() <= 0 {
		t.Fatalf("bad samples: n=%d min=%v", s.Len(), s.Min())
	}
}

func TestBusyLoadStops(t *testing.T) {
	stop := BusyLoad(2)
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("BusyLoad did not stop")
	}
}

func TestMeasureRTTErrorOnClosed(t *testing.T) {
	a, b := ChanPair(0)
	b.Close()
	a.Close()
	if _, err := MeasureRTT(a, 1, 0, 8); err == nil {
		t.Fatal("expected error on closed transport")
	}
}
