package shmring

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/ipc"
)

// Interface conformance, checked at compile time.
var (
	_ ipc.Transport   = (*Endpoint)(nil)
	_ ipc.FrameRecver = (*Endpoint)(nil)
	_ ipc.TryRecver   = (*Endpoint)(nil)
	_ ipc.RecvSet     = (*Mux)(nil)
)

func testPair(t *testing.T, o Options) (*Endpoint, *Endpoint) {
	t.Helper()
	a, b, err := Pair(filepath.Join(t.TempDir(), "ring"), o, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestRoundTrip(t *testing.T) {
	a, b := testPair(t, Options{})
	for _, size := range []int{1, 2, 3, 64, 1024, 65536} {
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		if err := a.Send(msg); err != nil {
			t.Fatalf("send %d bytes: %v", size, err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d bytes: %v", size, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("%d-byte message corrupted in transit", size)
		}
		// And the reverse direction through the other ring.
		if err := b.Send(msg); err != nil {
			t.Fatalf("reverse send %d bytes: %v", size, err)
		}
		got, err = a.Recv()
		if err != nil {
			t.Fatalf("reverse recv %d bytes: %v", size, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("%d-byte reverse message corrupted in transit", size)
		}
	}
}

func TestBoundariesPreserved(t *testing.T) {
	a, b := testPair(t, Options{})
	sizes := []int{5, 1, 300, 7, 64}
	for i, n := range sizes {
		msg := bytes.Repeat([]byte{byte(i + 1)}, n)
		if err := a.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range sizes {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n || got[0] != byte(i+1) {
			t.Fatalf("message %d: got %d bytes first=%#x, want %d bytes of %#x",
				i, len(got), got[0], n, i+1)
		}
	}
}

// TestWrapAroundEveryOffset walks records whose size is coprime to the ring
// size across the whole ring, twice: once with a record shorter than the
// 4-byte header is wide (so even the size header straddles the boundary) and
// once with a record a quarter of the ring (so payloads straddle). Every
// byte offset of the ring hosts a record start in the first walk.
func TestWrapAroundEveryOffset(t *testing.T) {
	for _, payload := range []int{3, 1001} { // records of 7 and 1005 bytes; gcd with 4096 is 1
		a, b := testPair(t, Options{RingBytes: 4096})
		msg := make([]byte, payload)
		iters := 2 * 4096 / (4 + payload) * (4 + payload) // at least two full ring trips
		if payload == 3 {
			iters = 2 * 4096 // every offset
		}
		for i := 0; i < iters; i++ {
			for j := range msg {
				msg[j] = byte(i + j)
			}
			if err := a.Send(msg); err != nil {
				t.Fatalf("payload %d iter %d: send: %v", payload, i, err)
			}
			f, err := b.RecvFrame()
			if err != nil {
				t.Fatalf("payload %d iter %d: recv: %v", payload, i, err)
			}
			if !bytes.Equal(f.B, msg) {
				t.Fatalf("payload %d iter %d: corrupted across wrap (got %x... want %x...)",
					payload, i, f.B[:min(8, len(f.B))], msg[:min(8, len(msg))])
			}
			f.Release()
		}
		a.Close()
		b.Close()
	}
}

// TestFullRingBackpressure fills a tiny ring and checks that Send blocks
// (rather than dropping or erroring) until the consumer frees space, and
// that every message survives in order.
func TestFullRingBackpressure(t *testing.T) {
	a, b := testPair(t, Options{RingBytes: 4096})
	const total = 200
	var sent atomic.Int32
	errc := make(chan error, 1)
	go func() {
		msg := make([]byte, 512)
		for i := 0; i < total; i++ {
			msg[0], msg[1] = byte(i>>8), byte(i)
			if err := a.Send(msg); err != nil {
				errc <- err
				return
			}
			sent.Add(1)
		}
		errc <- nil
	}()
	time.Sleep(30 * time.Millisecond)
	if n := sent.Load(); n >= total {
		t.Fatalf("producer pushed all %d 512-byte messages into a 4 KiB ring without backpressure", total)
	}
	for i := 0; i < total; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := []byte{byte(i >> 8), byte(i)}; !bytes.Equal(got[:2], want) {
			t.Fatalf("message %d out of order: header %x, want %x", i, got[:2], want)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("producer failed: %v", err)
	}
}

// TestCloseWhileParkedLocal closes an endpoint whose receiver is parked on
// its own doorbell; the receiver must wake promptly with ErrClosed.
func TestCloseWhileParkedLocal(t *testing.T) {
	a, _ := testPair(t, Options{})
	done := make(chan error, 1)
	go func() {
		_, err := a.RecvFrame()
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the receiver burn its spin budget and park
	start := time.Now()
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ipc.ErrClosed) {
			t.Fatalf("parked recv returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked receiver did not wake after local Close")
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("wakeup took %v; closing the bell should interrupt the park immediately", d)
	}
}

// TestCloseWhileParkedPeer closes the far endpoint instead: the closer must
// ring the parked receiver's doorbell so it observes the shared closed flag
// without waiting out the park timeout.
func TestCloseWhileParkedPeer(t *testing.T) {
	a, b := testPair(t, Options{ParkTimeout: 10 * time.Second})
	done := make(chan error, 1)
	go func() {
		_, err := a.RecvFrame()
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ipc.ErrClosed) {
			t.Fatalf("parked recv returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver parked with a 10s timeout was not woken by the peer's Close")
	}
}

func TestDrainAfterPeerClose(t *testing.T) {
	a, b := testPair(t, Options{})
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	for i := 0; i < 3; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("queued message %d lost to peer close: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("queued message %d: got %#x", i, got[0])
		}
	}
	if _, err := b.Recv(); !errors.Is(err, ipc.ErrClosed) {
		t.Fatalf("recv after drain returned %v, want ErrClosed", err)
	}
	if err := b.Send([]byte{9}); !errors.Is(err, ipc.ErrClosed) {
		t.Fatalf("send to closed peer returned %v, want ErrClosed", err)
	}
}

// TestTornSizeHeader corrupts the shared mapping the ways a crashed or
// hostile peer could and checks the consumer refuses to walk garbage: it
// fails the connection instead of handing out a frame.
func TestTornSizeHeader(t *testing.T) {
	t.Run("short header", func(t *testing.T) {
		a, b := testPair(t, Options{})
		// Publish 2 bytes: less than a size header.
		atomic.StoreUint64(a.sendR.head, 2)
		_, err := b.TryRecvFrame()
		if err == nil || errors.Is(err, ipc.ErrClosed) {
			t.Fatalf("torn header accepted: err=%v", err)
		}
		// The endpoint is failed, not just this read.
		if _, err2 := b.TryRecvFrame(); err2 == nil {
			t.Fatal("endpoint still serving frames after corruption")
		}
		if err3 := b.Send([]byte{1}); err3 == nil {
			t.Fatal("send still working after corruption")
		}
	})
	t.Run("absurd length", func(t *testing.T) {
		a, b := testPair(t, Options{})
		hdr := []byte{0xff, 0xff, 0xff, 0x7f} // ~2 GiB record
		a.sendR.write(0, hdr)
		atomic.StoreUint64(a.sendR.head, 8)
		if _, err := b.TryRecvFrame(); err == nil || errors.Is(err, ipc.ErrClosed) {
			t.Fatalf("absurd length accepted: err=%v", err)
		}
	})
	t.Run("length past head", func(t *testing.T) {
		a, b := testPair(t, Options{})
		hdr := []byte{100, 0, 0, 0} // claims 100 bytes; only 6 published
		a.sendR.write(0, hdr)
		atomic.StoreUint64(a.sendR.head, 10)
		if _, err := b.TryRecvFrame(); err == nil || errors.Is(err, ipc.ErrClosed) {
			t.Fatalf("header pointing past published data accepted: err=%v", err)
		}
	})
}

// TestSingleOutstandingFrame pins the view-ownership contract: the ring
// hands out one frame at a time, and the next receive fails until Release
// advances the cursor.
func TestSingleOutstandingFrame(t *testing.T) {
	a, b := testPair(t, Options{})
	a.Send([]byte("one"))
	a.Send([]byte("two"))
	f1, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TryRecvFrame(); err == nil {
		t.Fatal("second frame handed out while the first was outstanding")
	}
	if string(f1.B) != "one" {
		t.Fatalf("first frame = %q", f1.B)
	}
	f1.Release()
	f2, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.B) != "two" {
		t.Fatalf("second frame = %q", f2.B)
	}
	f2.Release()
}

// TestReleaseFreesSpace checks Release is what returns ring space: a ring
// sized for one record accepts the next Send only after the view is
// released.
func TestReleaseFreesSpace(t *testing.T) {
	a, b := testPair(t, Options{RingBytes: 4096})
	big := make([]byte, 3000)
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	f, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	sent := make(chan error, 1)
	go func() { sent <- a.Send(big) }()
	select {
	case err := <-sent:
		t.Fatalf("send of a second 3000-byte record into a 4 KiB ring returned %v before the first was released", err)
	case <-time.After(20 * time.Millisecond):
	}
	f.Release()
	select {
	case err := <-sent:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send still blocked after the outstanding view was released")
	}
	f2, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	f2.Release()
}

func TestOversizedFrameRejected(t *testing.T) {
	a, _ := testPair(t, Options{RingBytes: 4096})
	if err := a.Send(make([]byte, ipc.MaxFrame+1)); err == nil {
		t.Fatal("frame above ipc.MaxFrame accepted")
	}
	// Also: a frame under MaxFrame but larger than this ring can ever hold
	// must fail fast, not deadlock in the backpressure loop.
	if err := a.Send(make([]byte, 8000)); err == nil {
		t.Fatal("frame larger than the ring accepted")
	}
}

func TestCreateOpenValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(filepath.Join(dir, "r1"), Options{RingBytes: 1000}); err == nil {
		t.Fatal("non-power-of-two ring size accepted")
	}
	if _, err := Open(filepath.Join(dir, "absent"), Options{}); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
	// Open of a file that exists but was never initialized must fail (the
	// creator publishes the magic last), so dialers can retry cleanly.
	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, make([]byte, 4096), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(garbage, Options{}); err == nil {
		t.Fatal("Open of an uninitialized file succeeded")
	}
	a, err := Create(filepath.Join(dir, "r2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := Create(filepath.Join(dir, "r2"), Options{}); err == nil {
		t.Fatal("Create over an existing ring file succeeded")
	}
}

// TestEchoMeasureRTT runs the Figure 2 measurement machinery end to end over
// the ring: the generic Echo server and MeasureRTT client exercise exactly
// the Transport+FrameRecver surface the experiment uses.
func TestEchoMeasureRTT(t *testing.T) {
	a, b := testPair(t, Options{})
	go ipc.Echo(b)
	s, err := ipc.MeasureRTT(a, 32, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 32 {
		t.Fatalf("got %d samples, want 32", s.Len())
	}
}

// TestStressProducerConsumer hammers both directions concurrently with
// varied record sizes; run under -race (make test-race-robust) it is the
// memory-ordering check for the SPSC cursor protocol, the park/wake
// doorbell, and the view hand-off.
func TestStressProducerConsumer(t *testing.T) {
	const total = 20000
	a, b := testPair(t, Options{RingBytes: 1 << 14, SpinYields: 16})
	run := func(src, dst *Endpoint, dir string, wg *sync.WaitGroup) {
		defer wg.Done()
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			msg := make([]byte, 1024)
			for i := 0; i < total; i++ {
				n := 2 + (i*31)%700
				m := msg[:n]
				m[0], m[1] = byte(i>>8), byte(i)
				for j := 2; j < n; j++ {
					m[j] = byte(i + j)
				}
				if err := src.Send(m); err != nil {
					t.Errorf("%s send %d: %v", dir, i, err)
					return
				}
			}
		}()
		for i := 0; i < total; i++ {
			f, err := dst.RecvFrame()
			if err != nil {
				t.Errorf("%s recv %d: %v", dir, i, err)
				return
			}
			n := 2 + (i*31)%700
			if len(f.B) != n || f.B[0] != byte(i>>8) || f.B[1] != byte(i) {
				t.Errorf("%s recv %d: got %d bytes hdr %x%x", dir, i, len(f.B), f.B[0], f.B[1])
				f.Release()
				return
			}
			for j := 2; j < n; j++ {
				if f.B[j] != byte(i+j) {
					t.Errorf("%s recv %d: byte %d corrupted", dir, i, j)
					break
				}
			}
			f.Release()
		}
		inner.Wait()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go run(a, b, "a->b", &wg)
	go run(b, a, "b->a", &wg)
	wg.Wait()
}

func TestMuxServesMany(t *testing.T) {
	dir := t.TempDir()
	mux, err := NewMux(filepath.Join(dir, "mux.bell"))
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	const conns, perConn = 4, 500
	producers := make([]*Endpoint, conns)
	consumers := make([]*Endpoint, conns)
	for i := range producers {
		a, b, err := Pair(filepath.Join(dir, "ring"+string(rune('0'+i))),
			Options{}, Options{Bell: mux.Bell()})
		if err != nil {
			t.Fatal(err)
		}
		if err := mux.Adopt(b); err != nil {
			t.Fatal(err)
		}
		producers[i], consumers[i] = a, b
		defer a.Close()
		defer b.Close()
	}
	// A foreign endpoint (private bell) must be refused.
	fa, fb, err := Pair(filepath.Join(dir, "foreign"), Options{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	defer fb.Close()
	if err := mux.Adopt(fb); err == nil {
		t.Fatal("mux adopted an endpoint bound to a different doorbell")
	}

	var wg sync.WaitGroup
	for ci, p := range producers {
		wg.Add(1)
		go func(ci int, p *Endpoint) {
			defer wg.Done()
			for i := 0; i < perConn; i++ {
				if err := p.Send([]byte{byte(ci), byte(i >> 8), byte(i)}); err != nil {
					t.Errorf("conn %d send %d: %v", ci, i, err)
					return
				}
				if i%97 == 0 {
					time.Sleep(time.Millisecond) // force idle gaps so the loop actually parks
				}
			}
		}(ci, p)
	}
	got := make([]int, conns)
	received := 0
	deadline := time.Now().Add(30 * time.Second)
	for received < conns*perConn {
		if time.Now().After(deadline) {
			t.Fatalf("mux loop stalled: %d/%d received", received, conns*perConn)
		}
		progress := false
		for ci, c := range consumers {
			for {
				f, err := c.TryRecvFrame()
				if err != nil {
					t.Fatalf("conn %d: %v", ci, err)
				}
				if f == nil {
					break
				}
				if int(f.B[0]) != ci || int(f.B[1])<<8|int(f.B[2]) != got[ci] {
					t.Fatalf("conn %d: out-of-order or cross-wired message % x (want seq %d)", ci, f.B, got[ci])
				}
				got[ci]++
				received++
				progress = true
				f.Release()
			}
		}
		if !progress {
			if err := mux.WaitAny(); err != nil {
				t.Fatalf("WaitAny: %v", err)
			}
		}
	}
	wg.Wait()
	for _, c := range consumers {
		c.Close()
	}
	if err := mux.WaitAny(); !errors.Is(err, ipc.ErrClosed) {
		t.Fatalf("WaitAny over all-closed endpoints returned %v, want ErrClosed", err)
	}
}
