package shmring_test

import (
	"path/filepath"
	"testing"

	"github.com/ccp-repro/ccp/internal/bufpool"
	"github.com/ccp-repro/ccp/internal/ipc/shmring"
	"github.com/ccp-repro/ccp/internal/testenv"
)

// TestAllocsShmRingRoundTrip pins the ring hot path at zero allocations per
// message: Send stages into the mapped ring with a stack header, and
// RecvFrame hands out the endpoint's reusable view Buf (a 3-index slice of
// ring memory, or the amortized scratch buffer when a record straddles the
// boundary). The small ring forces frequent wrap-arounds, so the scratch
// path is pinned too — it must be warmed before measuring, which is why the
// warmup below walks more than a full ring.
func TestAllocsShmRingRoundTrip(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	if bufpool.DebugEnabled {
		t.Skip("debugpool ownership tracking records stack traces on Release")
	}
	a, b, err := shmring.Pair(filepath.Join(t.TempDir(), "ring"),
		shmring.Options{RingBytes: 4096}, shmring.Options{RingBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	msg := make([]byte, 64)
	var sendErr, recvErr error
	fn := func() {
		if sendErr = a.Send(msg); sendErr != nil {
			return
		}
		f, err := b.RecvFrame()
		if err != nil {
			recvErr = err
			return
		}
		f.Release()
	}
	for i := 0; i < 200; i++ { // >3 full ring trips: warm the wrap scratch
		fn()
	}
	if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
		t.Fatalf("shmring send/recv allocated %.3f times per op, want 0", allocs)
	}
	if sendErr != nil || recvErr != nil {
		t.Fatalf("round trip failed: send=%v recv=%v", sendErr, recvErr)
	}
}

// TestAllocsShmRingTryRecv pins the multiplexed serve loop's poll primitive:
// a TryRecvFrame that finds a frame, and one that finds the ring empty, must
// both stay off the heap.
func TestAllocsShmRingTryRecv(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	if bufpool.DebugEnabled {
		t.Skip("debugpool ownership tracking records stack traces on Release")
	}
	a, b, err := shmring.Pair(filepath.Join(t.TempDir(), "ring"),
		shmring.Options{}, shmring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	msg := make([]byte, 64)
	fn := func() {
		a.Send(msg)
		f, _ := b.TryRecvFrame()
		f.Release()
		if f2, _ := b.TryRecvFrame(); f2 != nil { // empty poll
			t.Fatal("unexpected second frame")
		}
	}
	fn()
	if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
		t.Fatalf("shmring try-recv poll allocated %.3f times per op, want 0", allocs)
	}
}
