package shmring

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ccp-repro/ccp/internal/ipc"
)

// Mux multiplexes many ring endpoints onto one doorbell so a single serve
// goroutine can park for all of them: every adopted endpoint registers the
// shared bell as its wakeup target, and WaitAny arms every ring's park flag,
// re-checks readiness, and blocks on the one socket. This is the agent-side
// scaling move — readiness polling instead of a blocked goroutine per
// datapath connection.
//
// A Mux's bell must have exactly one waiter; run one serve loop (one
// Runtime.ServeSet) per Mux. Mux implements ipc.RecvSet.
type Mux struct {
	bell        *Bell
	parkTimeout time.Duration

	mu  sync.Mutex
	eps []*Endpoint
}

// NewMux binds a shared doorbell at bellPath. Endpoints to be served by this
// Mux must be created with Options.Bell = mux.Bell() and then Adopt-ed.
func NewMux(bellPath string) (*Mux, error) {
	bell, err := NewBell(bellPath)
	if err != nil {
		return nil, err
	}
	return &Mux{bell: bell, parkTimeout: 20 * time.Millisecond}, nil
}

// Bell returns the shared doorbell, for Options.Bell.
func (m *Mux) Bell() *Bell { return m.bell }

// Adopt adds an endpoint to the set. The endpoint must have been opened
// with this Mux's bell — otherwise its producer would ring a doorbell
// nobody in this loop is listening to.
func (m *Mux) Adopt(e *Endpoint) error {
	if e.bell != m.bell {
		return fmt.Errorf("shmring: endpoint %s was not opened with this mux's bell", e.path)
	}
	m.mu.Lock()
	m.eps = append(m.eps, e)
	m.mu.Unlock()
	return nil
}

// Transports returns the adopted endpoints as ipc.Transports.
func (m *Mux) Transports() []ipc.Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := make([]ipc.Transport, len(m.eps))
	for i, e := range m.eps {
		ts[i] = e
	}
	return ts
}

// WaitAny blocks until at least one adopted endpoint may have a frame (or
// is closed), with the same arm/re-check/park protocol a single endpoint
// uses — so no publication is lost between the emptiness check and the
// park. Spurious returns are allowed and expected; callers re-poll. It
// returns ipc.ErrClosed only when every endpoint is closed.
func (m *Mux) WaitAny() error {
	m.mu.Lock()
	eps := m.eps
	m.mu.Unlock()
	live := 0
	for _, e := range eps {
		if e.closed.Load() {
			continue
		}
		live++
		atomic.StoreUint32(e.recvR.parked, 1)
	}
	if live == 0 {
		return ipc.ErrClosed
	}
	ready := false
	for _, e := range eps {
		if e.closed.Load() {
			continue
		}
		if e.recvR.avail() != 0 || e.pending.Load() != 0 || atomic.LoadUint32(e.peerClosed) != 0 {
			ready = true
			break
		}
	}
	if !ready {
		m.bell.wait(m.parkTimeout)
	} else {
		// We are returning without a blocking read; swallow any dings
		// producers sent while our flags were armed so the next park does
		// not wake instantly on stale signals.
		m.bell.drain()
	}
	for _, e := range eps {
		atomic.StoreUint32(e.recvR.parked, 0)
	}
	return nil
}

// Close releases the shared doorbell. It does not close the endpoints;
// their owner does.
func (m *Mux) Close() error { return m.bell.Close() }
