// Package shmring is the fast lane between the agent and a datapath: a pair
// of lock-free single-producer/single-consumer byte rings over one mmap-ed
// file, one ring per direction. It exists because the paper's whole argument
// (Figure 2: IPC is cheap enough to move congestion control off the
// datapath) deserves the production-grade channel its SIGCOMM'18 follow-up
// actually shipped — a shared-memory queue — rather than only the Unix
// sockets the stdlib hands us.
//
// # Layout
//
// The ring file holds a 64-byte header followed by two ring blocks, each a
// 256-byte control area plus a power-of-two data area:
//
//	[file header][ctrl A→B][data A→B][ctrl B→A][data B→A]
//
// The creator (Create) is endpoint A and produces into the first ring; the
// opener (Open) is endpoint B and produces into the second. Each control
// area keeps the ring's two free-running byte cursors on their own cache
// lines — head (written only by the producer) and tail (written only by the
// consumer) — so the hot path never false-shares, plus the consumer's park
// flag and registered doorbell address.
//
// # Framing
//
// Messages are length-prefixed: a 4-byte little-endian size, then the
// payload. Records are written at head&mask with wrap-aware copies, so a
// frame (or even its size header) may straddle the ring boundary; both sides
// split their copies accordingly. A size header that fails validation
// (larger than ipc.MaxFrame, larger than the ring, or extending past the
// published head) can only mean corrupted shared memory, and the endpoint
// fails the connection rather than walking garbage.
//
// # Memory ordering
//
// Publication is release/acquire through the cursors: the producer writes
// the record bytes with plain stores and then publishes them with an atomic
// store of head; the consumer loads head atomically before reading record
// bytes, and returns space with an atomic store of tail that the producer
// loads before reusing it. Go's sync/atomic operations are sequentially
// consistent, which is stronger than the release/acquire edge this needs;
// across processes the same machine operations provide the same ordering on
// the shared mapping. See DESIGN.md §11 for the full argument.
//
// # Waiting
//
// Receivers spin briefly (yielding the scheduler, and periodically the OS,
// so a single-CPU host can run the peer), then park: set the ring's park
// flag, re-check emptiness, and block on a datagram-socket doorbell with a
// bounded timeout. A producer that observes the park flag after publishing
// clears it with a CAS and sends one datagram to the consumer's registered
// doorbell — so a saturated ring costs zero syscalls and an idle one costs
// one wakeup per park. Producers facing a full ring never use the doorbell;
// they yield and then sleep in bounded steps (backpressure is already the
// slow path). Close always wakes both sides: the closer raises its shared
// closed flag, rings the peer's doorbell, and closes its own.
package shmring

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"github.com/ccp-repro/ccp/internal/bufpool"
)

const (
	// magic is "CCPSHMR1" as a little-endian uint64; it is stored last during
	// Create so an Open racing the creator sees either no magic or a fully
	// initialized header.
	magic   = uint64(0x31524d4853504343)
	version = uint32(1)

	fileHdrSize = 64
	ctrlSize    = 256

	// File-header field offsets.
	offMagic   = 0
	offVersion = 8
	offRing    = 12 // ring data bytes per direction
	offClosedA = 16
	offClosedB = 20
	offPidA    = 24 // creator's pid, stored at map time (0 = not attached yet)
	offPidB    = 28 // opener's pid

	// Control-block field offsets (relative to the block).
	offHead     = 0   // producer cursor, own cache line
	offTail     = 64  // consumer cursor, own cache line
	offParked   = 128 // consumer park flag
	offBellLen  = 136 // doorbell path length; nonzero publishes the path
	offBellPath = 140

	// bellPathMax bounds a registered doorbell socket path (the control
	// block reserves ctrlSize-offBellPath bytes; Unix socket paths are
	// shorter than this anyway).
	bellPathMax = ctrlSize - offBellPath

	// DefaultRingBytes is the per-direction data size (256 KiB: deep enough
	// that batched report traffic never stalls, small enough that a
	// connection costs ~half a MiB of address space).
	DefaultRingBytes = 1 << 18

	minRingBytes = 1 << 12
	maxRingBytes = 1 << 30
)

// Options configures an endpoint.
type Options struct {
	// RingBytes is the data size per direction (power of two, default
	// DefaultRingBytes). Only Create uses it; Open adopts the file's size.
	RingBytes int
	// SpinYields is how many scheduler yields a receiver burns before
	// parking on the doorbell (default 192). Every fourth yield is an OS
	// yield so a busy single-CPU host still lets the peer process run.
	SpinYields int
	// ParkTimeout bounds one doorbell wait (default 20ms). It is a liveness
	// backstop — a parked receiver whose peer dies without closing re-checks
	// the shared flags this often — not a correctness mechanism.
	ParkTimeout time.Duration
	// Bell, when non-nil, is a shared doorbell (a Mux's): the endpoint
	// registers it instead of creating a private one, so one serve loop can
	// park for many connections. The endpoint does not close a shared bell.
	Bell *Bell
	// BellPath overrides the private doorbell socket path (default
	// "<ring path>.a.bell" / ".b.bell" by role). Ignored when Bell is set.
	BellPath string
}

func (o Options) withDefaults() Options {
	if o.RingBytes == 0 {
		o.RingBytes = DefaultRingBytes
	}
	if o.SpinYields == 0 {
		o.SpinYields = 192
	}
	if o.ParkTimeout == 0 {
		o.ParkTimeout = 20 * time.Millisecond
	}
	return o
}

// ring is one direction's view of the shared mapping.
type ring struct {
	head     *uint64 // atomic; written by the producer only
	tail     *uint64 // atomic; written by the consumer only
	parked   *uint32 // atomic; consumer arms, producer disarms with CAS
	bellLen  *uint32 // atomic publish flag for bellPath
	bellPath []byte
	data     []byte
	size     uint64
	mask     uint64
}

// avail returns the bytes of published, unconsumed records.
func (r *ring) avail() uint64 {
	return atomic.LoadUint64(r.head) - atomic.LoadUint64(r.tail)
}

// write copies p into the data area at free-running index at, splitting the
// copy at the ring boundary when the record straddles it.
func (r *ring) write(at uint64, p []byte) {
	pos := at & r.mask
	n := copy(r.data[pos:], p)
	if n < len(p) {
		copy(r.data, p[n:])
	}
}

// read copies len(p) bytes out of the data area at free-running index at,
// splitting at the boundary like write.
func (r *ring) read(at uint64, p []byte) {
	pos := at & r.mask
	n := copy(p, r.data[pos:])
	if n < len(p) {
		copy(p[n:], r.data[:len(p)-n])
	}
}

// Endpoint is one side of a shared-memory connection. It implements
// ipc.Transport, and its RecvFrame/TryRecvFrame hand out zero-copy views of
// ring memory: the view is valid only until its Release, which is what
// advances the consumer cursor and lets the producer reuse the region. At
// most one received frame may be outstanding per endpoint.
type Endpoint struct {
	mem  []byte
	path string
	role byte // 'a' (creator) or 'b' (opener)

	sendR ring // we produce
	recvR ring // we consume

	localClosed *uint32 // our shared closed flag
	peerClosed  *uint32
	peerPid     *uint32 // peer's pid slot in the header (0 until it attaches)

	opts    Options
	bell    *Bell
	ownBell bool

	// peerMu guards the cached dial to the peer's doorbell.
	peerMu   sync.Mutex
	peerConn doorbellConn

	sendMu sync.Mutex
	recvMu sync.Mutex

	// Adaptive spin state (recvMu-guarded). spinStarved is set when a
	// blocking receive had to park or outlasted starveWait: on a saturated
	// CPU scheduler yields starve behind runnable in-process busy work, so
	// subsequent waits replace the spin phase with a few direct OS yields
	// (handing the CPU to the peer process) and then the park. parkStreak
	// lets an occasional wait re-probe spinning so an idle host climbs back
	// onto the ~µs path. The mode only ever engages for a cross-process
	// peer (see peerInProcess): for a same-process peer a Gosched reaches
	// the peer goroutine directly, sched_yield reaches nothing, and fd
	// parks cost 10× the spin path.
	spinStarved bool
	parkStreak  int
	// peerLocal caches the peer-pid comparison once the peer has attached
	// (recvMu-guarded; the slot is written once and never changes).
	peerLocal, peerLocalKnown bool

	// view is the reusable zero-copy hand-out; pending is the bytes
	// (header+payload) its Release will advance the cursor by — nonzero
	// means a frame is outstanding and the next receive must wait.
	view    *bufpool.Buf
	pending atomic.Uint32
	scratch []byte // staging for records that straddle the ring boundary

	closed    atomic.Bool
	closeOnce sync.Once
	// corrupt records the first shared-memory validation failure; once set,
	// every operation returns it (the mapping is no longer trustworthy).
	corrupt atomic.Pointer[error]
}

// Create creates the ring file at path (which must not exist) and returns
// endpoint A. The file is fully initialized before Create returns, so a
// peer may Open it at any later moment.
func Create(path string, o Options) (*Endpoint, error) {
	o = o.withDefaults()
	if err := checkRingBytes(o.RingBytes); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shmring: create: %w", err)
	}
	total := fileSize(o.RingBytes)
	if err := f.Truncate(int64(total)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("shmring: size ring file: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("shmring: mmap: %w", err)
	}
	binary.LittleEndian.PutUint32(mem[offVersion:], version)
	binary.LittleEndian.PutUint32(mem[offRing:], uint32(o.RingBytes))
	// Publish the header: Open validates the magic before trusting anything
	// else, so store it last, atomically.
	atomic.StoreUint64(u64at(mem, offMagic), magic)
	return newEndpoint(mem, path, 'a', o)
}

// Open maps an existing ring file and returns endpoint B. It fails (rather
// than blocking) when the file is absent or not yet initialized; dialers
// retry, exactly as they would a socket that is not listening yet.
func Open(path string, o Options) (*Endpoint, error) {
	o = o.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("shmring: open: %w", err)
	}
	var hdr [fileHdrSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("shmring: read header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[offMagic:]) != magic {
		f.Close()
		return nil, fmt.Errorf("shmring: %s: not a shmring file (or not initialized yet)", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[offVersion:]); v != version {
		f.Close()
		return nil, fmt.Errorf("shmring: %s: version %d, want %d", path, v, version)
	}
	ringBytes := int(binary.LittleEndian.Uint32(hdr[offRing:]))
	if err := checkRingBytes(ringBytes); err != nil {
		f.Close()
		return nil, err
	}
	total := fileSize(ringBytes)
	if st, err := f.Stat(); err != nil || st.Size() < int64(total) {
		f.Close()
		return nil, fmt.Errorf("shmring: %s: truncated ring file", path)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("shmring: mmap: %w", err)
	}
	o.RingBytes = ringBytes
	return newEndpoint(mem, path, 'b', o)
}

// Pair creates the ring file at path and opens both endpoints in-process:
// the A side with aOpts, the B side with bOpts. It exists for tests,
// benchmarks, and single-process deployments (the loadgen) — the shared
// memory is real either way.
func Pair(path string, aOpts, bOpts Options) (a, b *Endpoint, err error) {
	a, err = Create(path, aOpts)
	if err != nil {
		return nil, nil, err
	}
	b, err = Open(path, bOpts)
	if err != nil {
		a.Close()
		return nil, nil, err
	}
	return a, b, nil
}

func newEndpoint(mem []byte, path string, role byte, o Options) (*Endpoint, error) {
	ringBytes := o.RingBytes
	r0 := ringAt(mem, fileHdrSize, ringBytes)
	r1 := ringAt(mem, fileHdrSize+ctrlSize+ringBytes, ringBytes)
	e := &Endpoint{mem: mem, path: path, role: role, opts: o}
	if role == 'a' {
		e.sendR, e.recvR = r0, r1
		e.localClosed = u32at(mem, offClosedA)
		e.peerClosed = u32at(mem, offClosedB)
		atomic.StoreUint32(u32at(mem, offPidA), uint32(os.Getpid()))
		e.peerPid = u32at(mem, offPidB)
	} else {
		e.sendR, e.recvR = r1, r0
		e.localClosed = u32at(mem, offClosedB)
		e.peerClosed = u32at(mem, offClosedA)
		atomic.StoreUint32(u32at(mem, offPidB), uint32(os.Getpid()))
		e.peerPid = u32at(mem, offPidA)
	}
	e.view = bufpool.NewView(e.releaseView)
	if o.Bell != nil {
		e.bell = o.Bell
	} else {
		bp := o.BellPath
		if bp == "" {
			bp = path + "." + string(role) + ".bell"
		}
		bell, err := NewBell(bp)
		if err != nil {
			syscall.Munmap(mem)
			return nil, err
		}
		e.bell, e.ownBell = bell, true
	}
	if err := e.register(); err != nil {
		if e.ownBell {
			e.bell.Close()
		}
		syscall.Munmap(mem)
		return nil, err
	}
	// The mapping is reclaimed when the endpoint becomes unreachable — not
	// in Close, which would race operations (and views) still in flight.
	runtime.SetFinalizer(e, func(e *Endpoint) { syscall.Munmap(e.mem) })
	return e, nil
}

// register publishes our doorbell path in the ring we consume, so the
// producer on the far side knows whom to wake. The path bytes go first,
// the length last with an atomic store: a nonzero length is the publish.
func (e *Endpoint) register() error {
	p := e.bell.Path()
	if len(p) > bellPathMax {
		return fmt.Errorf("shmring: doorbell path %q longer than %d bytes", p, bellPathMax)
	}
	copy(e.recvR.bellPath, p)
	atomic.StoreUint32(e.recvR.bellLen, uint32(len(p)))
	return nil
}

// Close marks this side closed, wakes a parked peer and any parked local
// receiver, and releases the private doorbell. The shared mapping itself is
// reclaimed when the endpoint is garbage collected (see newEndpoint); the
// ring file stays on disk for the creator's directory cleanup.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		atomic.StoreUint32(e.localClosed, 1)
		// A peer parked on our send ring must wake to observe the flag.
		if atomic.CompareAndSwapUint32(e.sendR.parked, 1, 0) {
			e.wakePeer()
		}
		if e.ownBell {
			e.bell.Close() // unblocks our own parked receiver immediately
		}
		e.peerMu.Lock()
		if e.peerConn != nil {
			e.peerConn.Close()
			e.peerConn = nil
		}
		e.peerMu.Unlock()
	})
	return nil
}

// Path returns the ring file path.
func (e *Endpoint) Path() string { return e.path }

func (e *Endpoint) failAndClose(format string, args ...any) error {
	err := fmt.Errorf("shmring: "+format, args...)
	e.corrupt.CompareAndSwap(nil, &err)
	e.Close()
	return *e.corrupt.Load()
}

func checkRingBytes(n int) error {
	if n < minRingBytes || n > maxRingBytes || n&(n-1) != 0 {
		return fmt.Errorf("shmring: ring size %d not a power of two in [%d, %d]", n, minRingBytes, maxRingBytes)
	}
	return nil
}

func fileSize(ringBytes int) int {
	return fileHdrSize + 2*(ctrlSize+ringBytes)
}

func ringAt(mem []byte, ctrl, ringBytes int) ring {
	return ring{
		head:     u64at(mem, ctrl+offHead),
		tail:     u64at(mem, ctrl+offTail),
		parked:   u32at(mem, ctrl+offParked),
		bellLen:  u32at(mem, ctrl+offBellLen),
		bellPath: mem[ctrl+offBellPath : ctrl+ctrlSize],
		data:     mem[ctrl+ctrlSize : ctrl+ctrlSize+ringBytes],
		size:     uint64(ringBytes),
		mask:     uint64(ringBytes) - 1,
	}
}

// u64at and u32at view a mapped offset as an atomically accessible word.
// The mapping is page-aligned and every cursor offset is 64-byte aligned,
// satisfying the 64-bit alignment requirement on every platform.
func u64at(mem []byte, off int) *uint64 { return (*uint64)(unsafe.Pointer(&mem[off])) }
func u32at(mem []byte, off int) *uint32 { return (*uint32)(unsafe.Pointer(&mem[off])) }
