//go:build linux

package shmring

import "syscall"

// osYield yields the processor to any runnable thread, including one in
// another process. runtime.Gosched only rotates goroutines within this
// process; on a single-CPU host a cross-process ring peer never runs unless
// the spinner periodically gives the kernel a chance to schedule it.
func osYield() {
	syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0)
}
