package shmring_test

import (
	"path/filepath"
	"testing"

	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/ipc/shmring"
)

// BenchmarkShmRingRTT and BenchmarkUnixRTT are the committed-baseline pair
// (bench/baseline.txt) behind the ISSUE 8 acceptance bar: the ring's 64-byte
// round trip against the Unix datagram lane the repo used before. Both drive
// the same Echo peer through the generic Transport surface; only the lane
// differs. Cross-process numbers (the paper's Figure 2 configuration) come
// from cmd/ipcbench, which forks the echo server.

func benchRTT(b *testing.B, client ipc.Transport, server ipc.Transport) {
	b.Helper()
	go ipc.Echo(server)
	msg := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(msg); err != nil {
			b.Fatal(err)
		}
		f, err := ipc.RecvFrame(client)
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
	}
}

func BenchmarkShmRingRTT(b *testing.B) {
	a, peer, err := shmring.Pair(filepath.Join(b.TempDir(), "ring"),
		shmring.Options{}, shmring.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	defer peer.Close()
	benchRTT(b, a, peer)
}

func BenchmarkUnixRTT(b *testing.B) {
	dir := b.TempDir()
	a, peer, err := ipc.DgramPair(filepath.Join(dir, "a.sock"), filepath.Join(dir, "b.sock"))
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	defer peer.Close()
	benchRTT(b, a, peer)
}
