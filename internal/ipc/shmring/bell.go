package shmring

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"
)

// ding is the one-byte datagram a producer sends to wake a parked consumer.
// Its content is meaningless; the readable event is the signal.
var ding = []byte{1}

type doorbellConn = *net.UnixConn

// Bell is a wakeup doorbell: a bound Unix datagram socket a consumer parks
// on and producers ding. Datagram sockets give exactly the futex-like
// semantics the ring needs with nothing outside the stdlib: waiting is one
// blocking read, waking is one sendto from any process that knows the path,
// and a burst of dings coalesces into (at least) one wakeup — a slow
// receiver just finds the socket buffer non-empty and returns immediately.
//
// A Bell may back a single endpoint or be shared by many (see Mux), but it
// must have exactly one waiter: competing readers would steal each other's
// wakeups.
type Bell struct {
	conn   *net.UnixConn
	path   string
	closed atomic.Bool
}

// NewBell binds a doorbell socket at path.
func NewBell(path string) (*Bell, error) {
	addr, err := net.ResolveUnixAddr("unixgram", path)
	if err != nil {
		return nil, fmt.Errorf("shmring: doorbell addr: %w", err)
	}
	conn, err := net.ListenUnixgram("unixgram", addr)
	if err != nil {
		return nil, fmt.Errorf("shmring: doorbell bind: %w", err)
	}
	return &Bell{conn: conn, path: path}, nil
}

// Path returns the socket path producers ding.
func (b *Bell) Path() string { return b.path }

// wait blocks until a ding arrives, d elapses, or the bell is closed.
// Callers treat every return as spurious and re-check ring state.
func (b *Bell) wait(d time.Duration) {
	if b.closed.Load() {
		return
	}
	var buf [16]byte
	b.conn.SetReadDeadline(time.Now().Add(d))
	b.conn.Read(buf[:])
}

// drain empties any queued dings without blocking, so a waiter that already
// found work does not wake instantly on the next park for stale signals.
func (b *Bell) drain() {
	if b.closed.Load() {
		return
	}
	var buf [16]byte
	b.conn.SetReadDeadline(time.Now())
	for {
		if _, err := b.conn.Read(buf[:]); err != nil {
			return
		}
	}
}

// Close unblocks the waiter and removes the socket file.
func (b *Bell) Close() error {
	if b.closed.Swap(true) {
		return nil
	}
	err := b.conn.Close()
	os.Remove(b.path)
	return err
}

func dialBell(path string) (doorbellConn, error) {
	raddr, err := net.ResolveUnixAddr("unixgram", path)
	if err != nil {
		return nil, err
	}
	return net.DialUnix("unixgram", nil, raddr)
}
