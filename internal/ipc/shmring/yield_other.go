//go:build !linux

package shmring

import "runtime"

// osYield on non-Linux platforms falls back to a scheduler yield; the
// ParkTimeout backstop still guarantees cross-process progress.
func osYield() {
	runtime.Gosched()
}
