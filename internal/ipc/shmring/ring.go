package shmring

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/ccp-repro/ccp/internal/bufpool"
	"github.com/ccp-repro/ccp/internal/ipc"
)

// Send copies msg into the send ring as one length-prefixed record and
// publishes it with an atomic head store. When the ring is full it applies
// backpressure by polling — scheduler yields escalating to bounded sleeps —
// rather than parking on a doorbell, so producers never compete with the
// consumer side for doorbell reads (see DESIGN.md §11). The frame is
// published before Send returns; msg is not retained.
func (e *Endpoint) Send(msg []byte) error {
	need := uint64(4 + len(msg))
	if len(msg) > ipc.MaxFrame || need > e.sendR.size {
		return fmt.Errorf("shmring: frame of %d bytes exceeds limit", len(msg))
	}
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	r := &e.sendR
	head := atomic.LoadUint64(r.head)
	yields := 0
	var sleep time.Duration
	for {
		if err := e.openForSend(); err != nil {
			return err
		}
		if r.size-(head-atomic.LoadUint64(r.tail)) >= need {
			break
		}
		fullWait(&yields, &sleep)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	r.write(head, hdr[:])
	r.write(head+4, msg)
	atomic.StoreUint64(r.head, head+need)
	// Dekker-style wakeup: the consumer arms parked before re-checking
	// emptiness; we publish head before checking parked. Both sides use
	// sequentially consistent atomics, so at least one of them observes the
	// other and no wakeup is lost. The CAS means exactly one producer-side
	// ding per park.
	if atomic.CompareAndSwapUint32(r.parked, 1, 0) {
		e.wakePeer()
	}
	return nil
}

func (e *Endpoint) openForSend() error {
	if p := e.corrupt.Load(); p != nil {
		return *p
	}
	if e.closed.Load() || atomic.LoadUint32(e.peerClosed) != 0 {
		return ipc.ErrClosed
	}
	return nil
}

// fullWait is the producer's bounded backpressure: a few scheduler yields
// (with periodic OS yields so a one-CPU host runs the consumer process),
// then sleeps doubling up to 1ms. Worst-case staleness on a wedged consumer
// is therefore ~1ms per probe, and a closed peer is noticed on every probe.
func fullWait(yields *int, sleep *time.Duration) {
	*yields++
	if *yields <= 64 {
		if *yields&7 == 0 {
			osYield()
		} else {
			runtime.Gosched()
		}
		return
	}
	if *sleep == 0 {
		*sleep = time.Microsecond
	} else if *sleep < time.Millisecond {
		*sleep *= 2
	}
	time.Sleep(*sleep)
}

// Recv returns the next message as a fresh slice (copying out of the ring).
// Prefer RecvFrame on hot paths.
func (e *Endpoint) Recv() ([]byte, error) {
	f, err := e.RecvFrame()
	if err != nil {
		return nil, err
	}
	msg := make([]byte, len(f.B))
	copy(msg, f.B)
	f.Release()
	return msg, nil
}

// RecvFrame blocks until a message is available and returns a zero-copy view
// of it. The view aliases ring memory (or an endpoint-owned staging buffer
// when the record straddles the ring boundary) and is valid only until its
// Release, which advances the consumer cursor; at most one frame may be
// outstanding, and the next receive fails until the previous view is
// released. After the peer closes, queued messages are still drained before
// ipc.ErrClosed is returned.
func (e *Endpoint) RecvFrame() (*bufpool.Buf, error) {
	e.recvMu.Lock()
	defer e.recvMu.Unlock()
	spins, parked, waited := 0, false, false
	var waitStart time.Time
	for {
		f, err := e.tryRecvFrame()
		if f != nil || err != nil {
			if f != nil && waited {
				// Feed the adaptive-spin state: a wait that had to park, or
				// that burned more wall clock than spinning could ever
				// justify (one scheduler yield behind an in-process busy
				// goroutine costs a full ~10ms preemption slice), biases
				// future waits toward the OS-yield-then-park path; a wait
				// satisfied quickly while spinning re-enables the spin
				// phase. Frames found without waiting at all say nothing
				// about either mode and leave the state untouched (on a
				// saturated CPU the peer's reply is often already queued
				// when we return from our own timeslice — treating that as
				// "spinning works" would flap between modes and stall every
				// other receive).
				// Same-process peers never go starved: a Gosched hands the
				// CPU to the peer goroutine directly, so spinning is the
				// fast path no matter how busy the host is.
				starved := (parked || time.Since(waitStart) > starveWait) &&
					!e.peerInProcess()
				if e.spinStarved = starved; starved {
					e.parkStreak++
				} else {
					e.parkStreak = 0
				}
			}
			return f, err
		}
		if !waited {
			waited = true
			waitStart = time.Now()
		}
		if e.waitRecv(&spins) {
			parked = true
		}
	}
}

// TryRecvFrame is the non-blocking RecvFrame: it returns (nil, nil) when the
// ring is empty. Same view-ownership contract as RecvFrame.
func (e *Endpoint) TryRecvFrame() (*bufpool.Buf, error) {
	e.recvMu.Lock()
	defer e.recvMu.Unlock()
	return e.tryRecvFrame()
}

// tryRecvFrame pops one record if available. Caller holds recvMu.
func (e *Endpoint) tryRecvFrame() (*bufpool.Buf, error) {
	if p := e.corrupt.Load(); p != nil {
		return nil, *p
	}
	if e.pending.Load() != 0 {
		return nil, fmt.Errorf("shmring: previous frame not released")
	}
	r := &e.recvR
	tail := atomic.LoadUint64(r.tail)
	avail := atomic.LoadUint64(r.head) - tail
	if avail == 0 {
		// Drained. Closure is only reported once the queue is empty, so a
		// close never eats messages already published (chan/unix transports
		// behave the same way).
		if e.closed.Load() || atomic.LoadUint32(e.peerClosed) != 0 {
			return nil, ipc.ErrClosed
		}
		return nil, nil
	}
	var hdr [4]byte
	if avail < 4 {
		return nil, e.failAndClose("torn frame header (%d bytes available)", avail)
	}
	r.read(tail, hdr[:])
	n := uint64(binary.LittleEndian.Uint32(hdr[:]))
	if n > ipc.MaxFrame || 4+n > r.size || 4+n > avail {
		return nil, e.failAndClose("corrupt frame header (len=%d avail=%d ring=%d)", n, avail, r.size)
	}
	pos := (tail + 4) & r.mask
	var view []byte
	if pos+n <= r.size {
		// Contiguous: hand out the ring bytes themselves. The capacity is
		// pinned to the record so nothing downstream (debugpool poisoning
		// included) can touch bytes beyond the consumed region.
		view = r.data[pos : pos+n : pos+n]
	} else {
		// The record wraps the ring boundary; stage it in endpoint-owned
		// scratch (amortized zero-alloc: the buffer is reused and only grows).
		if uint64(cap(e.scratch)) < n {
			e.scratch = make([]byte, n)
		}
		e.scratch = e.scratch[:n]
		r.read(tail+4, e.scratch)
		view = e.scratch
	}
	e.pending.Store(uint32(4 + n))
	e.view.SetView(view)
	return e.view, nil
}

// releaseView is the view Buf's release hook: it returns the consumed
// record's bytes to the producer by advancing the tail cursor. The store is
// atomic (release), so the producer never observes reclaimed space before
// the consumer is done reading it.
func (e *Endpoint) releaseView() {
	p := e.pending.Swap(0)
	if p == 0 {
		return
	}
	r := &e.recvR
	atomic.StoreUint64(r.tail, atomic.LoadUint64(r.tail)+uint64(p))
}

// peerInProcess reports whether the peer endpoint lives in this process
// (Pair, tests, the loadgen). The peer writes its pid into the header when
// it maps the file; the comparison is cached after the first sighting (the
// slot never changes once set). An unattached peer (slot still 0) reads as
// cross-process — the conservative answer for the starved-mode gate.
// Caller holds recvMu.
func (e *Endpoint) peerInProcess() bool {
	if !e.peerLocalKnown {
		pid := atomic.LoadUint32(e.peerPid)
		if pid == 0 {
			return false
		}
		e.peerLocal = pid == uint32(os.Getpid())
		e.peerLocalKnown = true
	}
	return e.peerLocal
}

// starveWait is the adaptive-spin mode switch: a satisfied wait that took
// longer than this (or that parked) marks the endpoint starved, because no
// amount of productive spinning costs hundreds of microseconds — only
// yields burned behind co-scheduled busy work do.
const starveWait = 200 * time.Microsecond
const starvedOSYields = 4

// waitRecv runs one step of the hybrid wait and reports whether it parked:
// burn the spin budget in scheduler yields (every fourth an OS yield, so a
// single-CPU box schedules the producer process), then park on the doorbell.
// When the previous satisfied wait starved (parked, or outlasted starveWait
// without parking), the spin phase is replaced by a handful of immediate OS
// yields and then the park — on a contended CPU each Gosched can cost a
// full scheduler timeslice behind in-process busy work, while sched_yield
// hands the CPU straight to the just-woken peer process; every 128th such
// wait re-probes the spin path so the endpoint recovers µs-level latency
// once the host idles.
// Parking is lost-wakeup-free: arm the parked flag, re-check for data and
// closure, and only then block — a producer that published after our check
// must observe parked=1 and ring the bell (see Send). The wait is bounded by
// ParkTimeout purely as a crash backstop; spurious wakeups just loop.
func (e *Endpoint) waitRecv(spins *int) (parked bool) {
	*spins++
	budget := e.opts.SpinYields
	if e.spinStarved && e.parkStreak&127 != 0 {
		if *spins <= starvedOSYields {
			// A few OS yields before parking: on a ping-pong workload the
			// ding our own Send just delivered made the peer runnable, and
			// sched_yield hands it the CPU directly — the only
			// sub-preemption-slice path to the reply on a busy one-CPU
			// host, where a Gosched runs in-process busy goroutines for a
			// full ~10ms slice and a parked fd read waits out the same
			// slice before the netpoller runs. Counts as a park for the
			// adaptive state (it is the starved-mode path validating
			// itself).
			osYield()
			return true
		}
		budget = 0
	}
	if *spins <= budget {
		// Every 4th yield goes to the OS: cross-process peers only run via
		// sched_yield on a one-CPU host, and in-process peers have already
		// run after the first Gosched, so extra Goscheds are pure latency.
		if *spins&3 == 0 {
			osYield()
		} else {
			runtime.Gosched()
		}
		return false
	}
	*spins = 0
	r := &e.recvR
	atomic.StoreUint32(r.parked, 1)
	if r.avail() != 0 || e.closed.Load() || atomic.LoadUint32(e.peerClosed) != 0 {
		atomic.StoreUint32(r.parked, 0)
		// Data surfaced only after the spin budget ran out: for the
		// adaptive state this counts as a park (spinning did not find it),
		// even though we never blocked.
		return true
	}
	e.bell.wait(e.opts.ParkTimeout)
	atomic.StoreUint32(r.parked, 0)
	return true
}

// wakePeer rings the doorbell the peer registered in our send ring. The
// dialed connection is cached; errors are deliberately ignored (a missing or
// full doorbell only delays the peer until its ParkTimeout re-check).
func (e *Endpoint) wakePeer() {
	r := &e.sendR
	e.peerMu.Lock()
	defer e.peerMu.Unlock()
	if e.peerConn == nil {
		n := atomic.LoadUint32(r.bellLen)
		if n == 0 || n > bellPathMax {
			return
		}
		c, err := dialBell(string(r.bellPath[:n]))
		if err != nil {
			return
		}
		e.peerConn = c
	}
	e.peerConn.SetWriteDeadline(time.Now().Add(time.Millisecond))
	if _, err := e.peerConn.Write(ding); err != nil {
		if ne, ok := err.(interface{ Timeout() bool }); !ok || !ne.Timeout() {
			// Not a full socket buffer — the bell may have been re-created;
			// drop the cached dial and try fresh on the next wakeup.
			e.peerConn.Close()
			e.peerConn = nil
		}
	}
}
