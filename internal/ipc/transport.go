// Package ipc provides the message transports connecting the CCP agent and
// datapaths: an in-process channel pair (tests and single-binary
// deployments), Unix stream sockets, and Unix datagram sockets (the closest
// stdlib analog of the Netlink sockets the paper's kernel datapath used).
// It also contains the echo client/server and CPU-load machinery behind the
// Figure 2 IPC round-trip-latency measurement.
package ipc

import (
	"errors"
	"sync"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("ipc: transport closed")

// Transport moves whole messages between an agent and a datapath. Send and
// Recv are safe for concurrent use; message boundaries are preserved.
type Transport interface {
	// Send transmits one message.
	Send(msg []byte) error
	// Recv blocks until one message arrives and returns it. The returned
	// slice is owned by the caller.
	Recv() ([]byte, error)
	// Close releases the transport; pending and future calls fail with
	// ErrClosed (or an equivalent network error).
	Close() error
}

// chanTransport is one endpoint of an in-process pair.
type chanTransport struct {
	send chan<- []byte
	recv <-chan []byte

	mu     sync.Mutex
	closed chan struct{}
	peer   *chanTransport
}

// ChanPair returns two connected in-process transports with the given buffer
// depth per direction. Messages are copied on Send, so callers may reuse
// their buffers.
func ChanPair(depth int) (Transport, Transport) {
	if depth < 0 {
		depth = 0
	}
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	a := &chanTransport{send: ab, recv: ba, closed: make(chan struct{})}
	b := &chanTransport{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *chanTransport) Send(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	// Check for closure first: a three-way select would pick randomly among
	// ready cases, letting a send "succeed" into a closed pair's buffer.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- cp:
		return nil
	}
}

func (c *chanTransport) Recv() ([]byte, error) {
	// A message already in flight when the peer closes must still be
	// delivered (a real socket's receive buffer survives the peer's close),
	// so queued messages win over the peer-closed signal: drain first,
	// report ErrClosed only once the channel is empty. Closing our own end
	// still fails immediately.
	select {
	case <-c.closed:
		return nil, ErrClosed
	default:
	}
	select {
	case msg := <-c.recv:
		return msg, nil
	default:
	}
	select {
	case <-c.closed:
		return nil, ErrClosed
	case msg := <-c.recv:
		return msg, nil
	case <-c.peer.closed:
		select {
		case msg := <-c.recv:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *chanTransport) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
		return nil
	default:
		close(c.closed)
	}
	return nil
}
