// Package ipc provides the message transports connecting the CCP agent and
// datapaths: an in-process channel pair (tests and single-binary
// deployments), Unix stream sockets, and Unix datagram sockets (the closest
// stdlib analog of the Netlink sockets the paper's kernel datapath used).
// It also contains the echo client/server and CPU-load machinery behind the
// Figure 2 IPC round-trip-latency measurement.
package ipc

import (
	"errors"
	"sync"

	"github.com/ccp-repro/ccp/internal/bufpool"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("ipc: transport closed")

// Transport moves whole messages between an agent and a datapath. Send and
// Recv are safe for concurrent use; message boundaries are preserved.
//
// Buffer ownership: Send borrows msg only for the duration of the call — the
// transport writes or copies it before returning, so the caller may reuse
// (or Release) its buffer immediately after Send returns. Recv returns a
// slice the caller owns outright, which costs a copy or an allocation per
// message; receive loops on a hot path should call the package-level
// RecvFrame instead, which hands out a pooled frame the caller must Release.
type Transport interface {
	// Send transmits one message.
	Send(msg []byte) error
	// Recv blocks until one message arrives and returns it. The returned
	// slice is owned by the caller.
	Recv() ([]byte, error)
	// Close releases the transport; pending and future calls fail with
	// ErrClosed (or an equivalent network error).
	Close() error
}

// FrameRecver is implemented by transports whose receive path can hand out
// pooled frames without a per-message copy. The caller owns the returned
// frame until it calls Release; the frame's bytes are invalid afterwards.
type FrameRecver interface {
	RecvFrame() (*bufpool.Buf, error)
}

// TryRecver is implemented by transports whose receive side can be polled
// without blocking. TryRecvFrame returns (nil, nil) when no message is
// waiting; a returned frame follows the FrameRecver ownership contract.
// Shared-memory rings implement this so a multiplexed serve loop can drain
// many connections from one goroutine.
type TryRecver interface {
	FrameRecver
	TryRecvFrame() (*bufpool.Buf, error)
}

// RecvSet is a group of transports whose receive readiness can be awaited
// together — one doorbell for the whole set instead of a blocked goroutine
// per connection. WaitAny blocks until at least one member may have a frame
// (or is closed); spurious returns are allowed, so callers re-poll the
// members after every wake. WaitAny returns an error (typically ErrClosed)
// only when waiting can never again produce a frame.
type RecvSet interface {
	Transports() []Transport
	WaitAny() error
}

// RecvFrame receives one message from t as a frame the caller must Release.
// Transports implementing FrameRecver deliver a pooled buffer with no copy;
// for any other Transport this falls back to Recv, wrapping the owned slice
// in a no-op-Release frame so callers handle both uniformly.
func RecvFrame(t Transport) (*bufpool.Buf, error) {
	if fr, ok := t.(FrameRecver); ok {
		return fr.RecvFrame()
	}
	msg, err := t.Recv()
	if err != nil {
		return nil, err
	}
	return bufpool.Wrap(msg), nil
}

// chanTransport is one endpoint of an in-process pair. Frames travel the
// channels as pooled buffers: Send copies into a frame from the pool, and
// RecvFrame hands that frame to the receiver, so a steady-state
// Send/RecvFrame/Release loop recycles a fixed set of buffers.
type chanTransport struct {
	send chan<- *bufpool.Buf
	recv <-chan *bufpool.Buf

	mu     sync.Mutex
	closed chan struct{}
	peer   *chanTransport
}

// ChanPair returns two connected in-process transports with the given buffer
// depth per direction. Messages are copied on Send, so callers may reuse
// their buffers.
func ChanPair(depth int) (Transport, Transport) {
	if depth < 0 {
		depth = 0
	}
	ab := make(chan *bufpool.Buf, depth)
	ba := make(chan *bufpool.Buf, depth)
	a := &chanTransport{send: ab, recv: ba, closed: make(chan struct{})}
	b := &chanTransport{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *chanTransport) Send(msg []byte) error {
	f := bufpool.Get(len(msg))
	f.B = append(f.B, msg...)
	// Check for closure first: a three-way select would pick randomly among
	// ready cases, letting a send "succeed" into a closed pair's buffer.
	select {
	case <-c.closed:
		f.Release()
		return ErrClosed
	case <-c.peer.closed:
		f.Release()
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		f.Release()
		return ErrClosed
	case <-c.peer.closed:
		f.Release()
		return ErrClosed
	case c.send <- f:
		return nil
	}
}

func (c *chanTransport) RecvFrame() (*bufpool.Buf, error) {
	// A message already in flight when the peer closes must still be
	// delivered (a real socket's receive buffer survives the peer's close),
	// so queued messages win over the peer-closed signal: drain first,
	// report ErrClosed only once the channel is empty. Closing our own end
	// still fails immediately.
	select {
	case <-c.closed:
		return nil, ErrClosed
	default:
	}
	select {
	case f := <-c.recv:
		return f, nil
	default:
	}
	select {
	case <-c.closed:
		return nil, ErrClosed
	case f := <-c.recv:
		return f, nil
	case <-c.peer.closed:
		select {
		case f := <-c.recv:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *chanTransport) Recv() ([]byte, error) {
	f, err := c.RecvFrame()
	if err != nil {
		return nil, err
	}
	msg := make([]byte, len(f.B))
	copy(msg, f.B)
	f.Release()
	return msg, nil
}

func (c *chanTransport) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
		return nil
	default:
		close(c.closed)
	}
	return nil
}
