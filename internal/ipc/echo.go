package ipc

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/ccp-repro/ccp/internal/stats"
)

// This file implements the Figure 2 measurement: the round-trip latency of a
// small control message over an IPC mechanism, under an idle and a heavily
// loaded CPU. The paper measured Netlink (kernel↔user) and Unix domain
// sockets (user↔user); we measure Unix datagram sockets (the closest stdlib
// analog of Netlink's datagram semantics) and Unix stream sockets, plus the
// in-process channel transport as a floor.

// Echo serves echo requests on t until Recv fails: every received message is
// sent straight back. Run it on its own goroutine (or process). The loop is
// allocation-free in steady state: each message is received as a pooled
// frame, echoed, and released.
func Echo(t Transport) {
	for {
		f, err := RecvFrame(t)
		if err != nil {
			return
		}
		err = t.Send(f.B)
		f.Release()
		if err != nil {
			return
		}
	}
}

// MeasureRTT sends n messages of size payloadBytes over t, waiting for each
// echo before sending the next, and returns the per-message round-trip
// times. warmup extra round trips run first and are discarded.
func MeasureRTT(t Transport, n, warmup, payloadBytes int) (*stats.Samples, error) {
	if payloadBytes < 1 {
		payloadBytes = 1
	}
	msg := make([]byte, payloadBytes)
	for i := range msg {
		msg[i] = byte(i)
	}
	var out stats.Samples
	for i := 0; i < warmup+n; i++ {
		start := time.Now()
		if err := t.Send(msg); err != nil {
			return nil, fmt.Errorf("ipc: echo send %d: %w", i, err)
		}
		reply, err := t.Recv()
		if err != nil {
			return nil, fmt.Errorf("ipc: echo recv %d: %w", i, err)
		}
		rtt := time.Since(start)
		if len(reply) != len(msg) {
			return nil, fmt.Errorf("ipc: echo reply length %d, want %d", len(reply), len(msg))
		}
		if i >= warmup {
			out.Add(float64(rtt))
		}
	}
	return &out, nil
}

// BusyLoad burns CPU on n goroutines (default: GOMAXPROCS) until the
// returned stop function is called. It reproduces Figure 2's "high CPU
// utilization" condition, where the paper observed *lower* IPC latencies
// (TurboBoost and no idle-state exit penalties).
func BusyLoad(n int) (stop func()) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	var quit atomic.Bool
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			x := uint64(2463534242)
			for !quit.Load() {
				// xorshift inner loop: pure CPU, no allocation, no syscalls.
				for k := 0; k < 4096; k++ {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
				}
			}
			sink.Store(x)
		}()
	}
	return func() {
		quit.Store(true)
		for i := 0; i < n; i++ {
			<-done
		}
	}
}

// sink defeats dead-code elimination of the busy loop.
var sink atomic.Uint64
