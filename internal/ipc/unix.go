package ipc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/ccp-repro/ccp/internal/bufpool"
)

// MaxFrame bounds a single message on stream transports; larger frames are
// rejected on both send and receive so a corrupt length prefix cannot drive
// unbounded allocation.
const MaxFrame = 1 << 20

// streamTransport frames messages over a reliable byte stream with a 4-byte
// little-endian length prefix.
type streamTransport struct {
	conn net.Conn

	sendMu sync.Mutex
	recvMu sync.Mutex
	hdr    [4]byte
	rhdr   [4]byte
}

// NewStream wraps a connected byte-stream connection (Unix or TCP) in a
// framing Transport.
func NewStream(conn net.Conn) Transport {
	return &streamTransport{conn: conn}
}

func (s *streamTransport) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("ipc: frame too large (%d bytes)", len(msg))
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	binary.LittleEndian.PutUint32(s.hdr[:], uint32(len(msg)))
	if _, err := s.conn.Write(s.hdr[:]); err != nil {
		return err
	}
	_, err := s.conn.Write(msg)
	return err
}

// RecvFrame reads one message into a pooled frame owned by the caller until
// Release.
func (s *streamTransport) RecvFrame() (*bufpool.Buf, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	if _, err := io.ReadFull(s.conn, s.rhdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(s.rhdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("ipc: oversized frame (%d bytes)", n)
	}
	f := bufpool.Get(int(n))
	f.B = f.B[:n]
	if _, err := io.ReadFull(s.conn, f.B); err != nil {
		f.Release()
		return nil, err
	}
	return f, nil
}

func (s *streamTransport) Recv() ([]byte, error) {
	f, err := s.RecvFrame()
	if err != nil {
		return nil, err
	}
	msg := make([]byte, len(f.B))
	copy(msg, f.B)
	f.Release()
	return msg, nil
}

func (s *streamTransport) Close() error { return s.conn.Close() }

// ListenUnix listens on a Unix stream socket at path. The caller accepts
// connections and wraps each with NewStream.
func ListenUnix(path string) (*net.UnixListener, error) {
	addr, err := net.ResolveUnixAddr("unix", path)
	if err != nil {
		return nil, err
	}
	return net.ListenUnix("unix", addr)
}

// DialUnix connects to a Unix stream socket and returns a framing Transport.
func DialUnix(path string) (Transport, error) {
	conn, err := net.Dial("unix", path)
	if err != nil {
		return nil, err
	}
	return NewStream(conn), nil
}

// dgramTransport is a Unix datagram socket endpoint: one datagram per
// message, preserving boundaries without framing — the same semantics as the
// Netlink sockets the paper's kernel datapath used. The socket is bound
// locally and every Send is addressed to the fixed peer.
type dgramTransport struct {
	conn *net.UnixConn
	peer *net.UnixAddr
}

func newDgram(conn *net.UnixConn, peer *net.UnixAddr) Transport {
	return &dgramTransport{conn: conn, peer: peer}
}

func (d *dgramTransport) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("ipc: datagram too large (%d bytes)", len(msg))
	}
	_, err := d.conn.WriteToUnix(msg, d.peer)
	return err
}

// RecvFrame reads one datagram straight into a pooled frame — no per-message
// copy. The caller owns the frame until Release.
func (d *dgramTransport) RecvFrame() (*bufpool.Buf, error) {
	f := bufpool.Get(MaxFrame)
	f.B = f.B[:MaxFrame]
	n, _, err := d.conn.ReadFromUnix(f.B)
	if err != nil {
		f.Release()
		return nil, err
	}
	f.B = f.B[:n]
	return f, nil
}

func (d *dgramTransport) Recv() ([]byte, error) {
	f, err := d.RecvFrame()
	if err != nil {
		return nil, err
	}
	msg := make([]byte, len(f.B))
	copy(msg, f.B)
	f.Release()
	return msg, nil
}

func (d *dgramTransport) Close() error { return d.conn.Close() }

// BindDgram binds a Unix datagram socket at local whose Sends are addressed
// to peer. The peer socket need not exist yet; Sends fail until it does.
func BindDgram(local, peer string) (Transport, error) {
	laddr, err := net.ResolveUnixAddr("unixgram", local)
	if err != nil {
		return nil, err
	}
	paddr, err := net.ResolveUnixAddr("unixgram", peer)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUnixgram("unixgram", laddr)
	if err != nil {
		return nil, err
	}
	return newDgram(conn, paddr), nil
}

// DgramPair binds Unix datagram sockets at pathA and pathB, each addressed
// at the other, and returns the two endpoints. Both paths must be free.
func DgramPair(pathA, pathB string) (Transport, Transport, error) {
	a, err := BindDgram(pathA, pathB)
	if err != nil {
		return nil, nil, err
	}
	b, err := BindDgram(pathB, pathA)
	if err != nil {
		a.Close()
		return nil, nil, err
	}
	return a, b, nil
}
