package proto

import "github.com/ccp-repro/ccp/internal/bufpool"

// MarshalFrame encodes m into a pooled frame. The caller owns the returned
// buffer (frame.B is the encoded message) and must Release it exactly once
// when the bytes are no longer needed — after the transport's Send returns,
// or after a receiver has finished decoding. Ownership may be handed off
// (e.g. scheduled into a simulator event that releases after delivery), but
// never shared.
//
// Steady state this allocates nothing: buffers cycle through the pool and
// the encoder appends within their retained capacity.
func MarshalFrame(m Msg) (*bufpool.Buf, error) {
	f := bufpool.Get(64)
	b, err := AppendMarshal(f.B, m)
	if err != nil {
		f.Release()
		return nil, err
	}
	f.B = b
	return f, nil
}
