package proto

import "fmt"

// Decoder decodes wire messages into reusable scratch storage, so a
// steady-state receive loop performs no heap allocation per message. The
// package-level Unmarshal is this with a throwaway Decoder; hot receive
// paths keep one Decoder per reader.
//
// Ownership rules:
//
//   - The message returned by Unmarshal — and everything reachable from it
//     (Report Fields, Vector Data, Batch sub-messages) — is valid only until
//     the next Unmarshal call on the same Decoder. Callers that need a
//     message longer must Clone it.
//   - Install.Prog aliases the input buffer (no copy on decode); it is
//     additionally invalidated when the input buffer is released or reused.
//     Receivers either consume the program during dispatch (the datapath
//     parses it immediately) or copy it.
//   - A Decoder is not safe for concurrent use. One Decoder per reading
//     goroutine.
//
// A Decoder reused across messages may return empty (rather than nil)
// Fields/Data/Msgs slices where a fresh decode would return nil; callers
// must treat the two identically, as encoding does.
type Decoder struct {
	creates  []Create
	meas     []Measurement
	vecs     []Vector
	urgents  []Urgent
	closes   []Close
	installs []Install
	cwnds    []SetCwnd
	rates    []SetRate
	backoffs []Backoff
	snaps    []Snapshot
	hbs      []Heartbeat
	instErrs []InstallErr
	batch    Batch

	nCreate, nMeas, nVec, nUrgent, nClose, nInstall, nCwnd, nRate, nBackoff int
	nSnap, nHB, nInstErr                                                    int

	// sub is the cursor for decoding batch sub-messages. It lives on the
	// Decoder rather than the stack because the recursive decode call defeats
	// escape analysis (a stack-local cursor costs one heap allocation per
	// sub-message). Sub-decodes reject nested batches, so the cursor is never
	// needed twice at once.
	sub decoder
}

// Unmarshal decodes one message into the decoder's scratch storage. The
// result is valid until the next Unmarshal on dec; see the type comment for
// the full ownership rules.
func (dec *Decoder) Unmarshal(data []byte) (Msg, error) {
	dec.nCreate, dec.nMeas, dec.nVec, dec.nUrgent = 0, 0, 0, 0
	dec.nClose, dec.nInstall, dec.nCwnd, dec.nRate, dec.nBackoff = 0, 0, 0, 0, 0
	dec.nSnap, dec.nHB, dec.nInstErr = 0, 0, 0
	d := decoder{data: data}
	m, err := dec.decode(&d, true)
	if err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("proto: %d trailing bytes after %s", len(d.data)-d.pos, m.Type())
	}
	return m, nil
}

// decode reads one message from d. Batches are accepted only at the top
// level (allowBatch), matching the no-nesting wire rule.
func (dec *Decoder) decode(d *decoder, allowBatch bool) (Msg, error) {
	t := MsgType(d.byte())
	switch t {
	case TypeCreate:
		v := dec.nextCreate()
		v.SID, v.MSS, v.InitCwnd, v.Seq = d.u32(), d.u32(), d.u32(), d.u32()
		v.SrcAddr = d.str()
		v.DstAddr = d.str()
		v.Alg = d.str()
		return v, nil
	case TypeMeasurement:
		v := dec.nextMeas()
		v.SID, v.Seq = d.u32(), d.u32()
		n := d.length(maxFieldCount, 8)
		v.Fields = v.Fields[:0]
		if d.err == nil && n > 0 {
			if cap(v.Fields) < n {
				v.Fields = make([]float64, 0, n)
			}
			for i := 0; i < n; i++ {
				v.Fields = append(v.Fields, d.f64())
			}
		}
		return v, nil
	case TypeVector:
		v := dec.nextVec()
		v.SID, v.Seq, v.NumFields = d.u32(), d.u32(), d.byte()
		n := d.length(maxVectorLen, 8)
		v.Data = v.Data[:0]
		if d.err == nil {
			if v.NumFields == 0 || n%int(v.NumFields) != 0 {
				return nil, fmt.Errorf("proto: vector shape %d x %d invalid", n, v.NumFields)
			}
			if cap(v.Data) < n {
				v.Data = make([]float64, 0, n)
			}
			for i := 0; i < n; i++ {
				v.Data = append(v.Data, d.f64())
			}
		}
		return v, nil
	case TypeUrgent:
		v := dec.nextUrgent()
		v.SID, v.Seq, v.Kind, v.Value = d.u32(), d.u32(), UrgentKind(d.byte()), d.f64()
		if d.err == nil && (v.Kind < UrgentDupAck || v.Kind > UrgentECN) {
			return nil, fmt.Errorf("proto: invalid urgent kind %d", v.Kind)
		}
		return v, nil
	case TypeClose:
		v := dec.nextClose()
		v.SID = d.u32()
		return v, nil
	case TypeInstall:
		v := dec.nextInstall()
		v.SID, v.Seq = d.u32(), d.u32()
		n := d.length(maxProgramSize, 1)
		// Aliases the input: the single copy, if the receiver needs one, is
		// the receiver's to make (most parse the program immediately).
		v.Prog = d.view(n)
		return v, nil
	case TypeSetCwnd:
		v := dec.nextCwnd()
		v.SID, v.Seq, v.Bytes = d.u32(), d.u32(), d.u32()
		return v, nil
	case TypeSetRate:
		v := dec.nextRate()
		v.SID, v.Seq, v.Bps = d.u32(), d.u32(), d.f64()
		return v, nil
	case TypeBackoff:
		v := dec.nextBackoff()
		v.SID, v.Factor = d.u32(), d.f64()
		if d.err == nil && (v.Factor < 1 || v.Factor > 1e6 || v.Factor != v.Factor) {
			return nil, fmt.Errorf("proto: invalid backoff factor %v", v.Factor)
		}
		return v, nil
	case TypeSnapshot:
		v := dec.nextSnap()
		if ver := d.byte(); d.err == nil && ver != SnapshotVersion {
			return nil, fmt.Errorf("proto: unsupported snapshot version %d", ver)
		}
		v.SID = d.u32()
		fl := d.byte()
		if d.err == nil && fl&^(snapFlagClosed|snapFlagInstalled) != 0 {
			return nil, fmt.Errorf("proto: unknown snapshot flags %#x", fl)
		}
		v.Closed = fl&snapFlagClosed != 0
		v.Installed = fl&snapFlagInstalled != 0
		v.MSS, v.InitCwnd = d.u32(), d.u32()
		v.CtrlSeq, v.CreateSeq = d.u32(), d.u32()
		v.ReportSeq, v.UrgentSeq = d.u32(), d.u32()
		v.SrcAddr = d.strInto(v.SrcAddr)
		v.DstAddr = d.strInto(v.DstAddr)
		v.Alg = d.strInto(v.Alg)
		n := d.length(maxProgramSize, 1)
		// Aliases the input, matching the Install.Prog rule.
		v.Prog = d.view(n)
		n = d.length(maxSnapStateLen, 8)
		v.State = v.State[:0]
		if d.err == nil && n > 0 {
			if cap(v.State) < n {
				v.State = make([]float64, 0, n)
			}
			for i := 0; i < n; i++ {
				v.State = append(v.State, d.f64())
			}
		}
		return v, nil
	case TypeHeartbeat:
		v := dec.nextHeartbeat()
		v.SID, v.Seq, v.SentAt = d.u32(), d.u32(), d.f64()
		return v, nil
	case TypeInstallErr:
		v := dec.nextInstallErr()
		v.SID, v.Seq = d.u32(), d.u32()
		v.Reason = d.strInto(v.Reason)
		return v, nil
	case TypeBatch:
		if !allowBatch {
			return nil, fmt.Errorf("proto: nested batch")
		}
		v := &dec.batch
		v.Msgs = v.Msgs[:0]
		n := d.length(maxBatchMsgs, 1)
		for i := 0; i < n && d.err == nil; i++ {
			sz := d.length(len(d.data)-d.pos, 1)
			raw := d.view(sz)
			if d.err != nil {
				break
			}
			dec.sub = decoder{data: raw}
			sub, err := dec.decode(&dec.sub, false)
			if err == nil && dec.sub.err != nil {
				err = dec.sub.err
			}
			if err == nil && dec.sub.pos != len(dec.sub.data) {
				err = fmt.Errorf("proto: %d trailing bytes after %s", len(dec.sub.data)-dec.sub.pos, sub.Type())
			}
			if err != nil {
				return nil, fmt.Errorf("proto: batch message %d: %w", i, err)
			}
			v.Msgs = append(v.Msgs, sub)
		}
		return v, nil
	}
	return nil, fmt.Errorf("proto: unknown message type %d", t)
}

// The next* helpers hand out one scratch element per message decoded,
// growing the slab on first use and reusing it (including each element's
// retained slice capacity) thereafter. Pointers handed out earlier in the
// same Unmarshal stay valid across growth: they alias the old backing array,
// which the results keep alive.

func (dec *Decoder) nextCreate() *Create {
	if dec.nCreate == len(dec.creates) {
		dec.creates = append(dec.creates, Create{})
	}
	v := &dec.creates[dec.nCreate]
	dec.nCreate++
	return v
}

func (dec *Decoder) nextMeas() *Measurement {
	if dec.nMeas == len(dec.meas) {
		dec.meas = append(dec.meas, Measurement{})
	}
	v := &dec.meas[dec.nMeas]
	dec.nMeas++
	return v
}

func (dec *Decoder) nextVec() *Vector {
	if dec.nVec == len(dec.vecs) {
		dec.vecs = append(dec.vecs, Vector{})
	}
	v := &dec.vecs[dec.nVec]
	dec.nVec++
	return v
}

func (dec *Decoder) nextUrgent() *Urgent {
	if dec.nUrgent == len(dec.urgents) {
		dec.urgents = append(dec.urgents, Urgent{})
	}
	v := &dec.urgents[dec.nUrgent]
	dec.nUrgent++
	return v
}

func (dec *Decoder) nextClose() *Close {
	if dec.nClose == len(dec.closes) {
		dec.closes = append(dec.closes, Close{})
	}
	v := &dec.closes[dec.nClose]
	dec.nClose++
	return v
}

func (dec *Decoder) nextInstall() *Install {
	if dec.nInstall == len(dec.installs) {
		dec.installs = append(dec.installs, Install{})
	}
	v := &dec.installs[dec.nInstall]
	dec.nInstall++
	return v
}

func (dec *Decoder) nextCwnd() *SetCwnd {
	if dec.nCwnd == len(dec.cwnds) {
		dec.cwnds = append(dec.cwnds, SetCwnd{})
	}
	v := &dec.cwnds[dec.nCwnd]
	dec.nCwnd++
	return v
}

func (dec *Decoder) nextRate() *SetRate {
	if dec.nRate == len(dec.rates) {
		dec.rates = append(dec.rates, SetRate{})
	}
	v := &dec.rates[dec.nRate]
	dec.nRate++
	return v
}

func (dec *Decoder) nextBackoff() *Backoff {
	if dec.nBackoff == len(dec.backoffs) {
		dec.backoffs = append(dec.backoffs, Backoff{})
	}
	v := &dec.backoffs[dec.nBackoff]
	dec.nBackoff++
	return v
}

func (dec *Decoder) nextSnap() *Snapshot {
	if dec.nSnap == len(dec.snaps) {
		dec.snaps = append(dec.snaps, Snapshot{})
	}
	v := &dec.snaps[dec.nSnap]
	dec.nSnap++
	return v
}

func (dec *Decoder) nextHeartbeat() *Heartbeat {
	if dec.nHB == len(dec.hbs) {
		dec.hbs = append(dec.hbs, Heartbeat{})
	}
	v := &dec.hbs[dec.nHB]
	dec.nHB++
	return v
}

func (dec *Decoder) nextInstallErr() *InstallErr {
	if dec.nInstErr == len(dec.instErrs) {
		dec.instErrs = append(dec.instErrs, InstallErr{})
	}
	v := &dec.instErrs[dec.nInstErr]
	dec.nInstErr++
	return v
}
