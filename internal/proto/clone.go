package proto

// Clone returns a deep copy of m sharing no memory with it. It is the escape
// hatch from the scratch-reuse ownership rules: a receiver that must retain a
// message past its validity window (past the HandleMessage call, past the
// next Decoder.Unmarshal, past a frame Release) clones it first.
func Clone(m Msg) Msg {
	switch v := m.(type) {
	case *Create:
		c := *v
		return &c
	case *Measurement:
		c := *v
		c.Fields = append([]float64(nil), v.Fields...)
		return &c
	case *Vector:
		c := *v
		c.Data = append([]float64(nil), v.Data...)
		return &c
	case *Urgent:
		c := *v
		return &c
	case *Close:
		c := *v
		return &c
	case *Install:
		c := *v
		c.Prog = append([]byte(nil), v.Prog...)
		return &c
	case *SetCwnd:
		c := *v
		return &c
	case *SetRate:
		c := *v
		return &c
	case *Backoff:
		c := *v
		return &c
	case *Snapshot:
		c := *v
		c.Prog = append([]byte(nil), v.Prog...)
		c.State = append([]float64(nil), v.State...)
		return &c
	case *Heartbeat:
		c := *v
		return &c
	case *InstallErr:
		c := *v
		return &c
	case *Batch:
		c := Batch{Msgs: make([]Msg, len(v.Msgs))}
		for i, sub := range v.Msgs {
			c.Msgs[i] = Clone(sub)
		}
		return &c
	}
	return m
}
