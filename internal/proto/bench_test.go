package proto_test

import (
	"testing"

	"github.com/ccp-repro/ccp/internal/proto"
)

// Benchmarks for the wire codec's two lanes. The package-level
// Marshal/Unmarshal pair preserves the original allocate-per-call behavior
// (fresh output buffer, throwaway Decoder scratch); AppendMarshal plus a
// reused Decoder is the pooled hot path the datapath and agent run on.
// `make benchstat` compares these against bench/baseline.txt.

func benchReport() *proto.Measurement {
	return &proto.Measurement{
		SID: 7, Seq: 42,
		Fields: []float64{0.012, 1.2e6, 1.1e6, 2896, 0, 0, 0.013},
	}
}

func benchBatch(n int) *proto.Batch {
	msgs := make([]proto.Msg, n)
	for i := range msgs {
		msgs[i] = &proto.Measurement{
			SID: uint32(i + 1), Seq: uint32(i + 1),
			Fields: []float64{0.01, 1e6, 1e6, 1448, 0, 0, 0.01},
		}
	}
	return &proto.Batch{Msgs: msgs}
}

func BenchmarkMarshalReport(b *testing.B) {
	m := benchReport()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendMarshalReport(b *testing.B) {
	m := benchReport()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = proto.AppendMarshal(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalReport(b *testing.B) {
	data, err := proto.Marshal(benchReport())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecoderUnmarshalReport(b *testing.B) {
	data, err := proto.Marshal(benchReport())
	if err != nil {
		b.Fatal(err)
	}
	var dec proto.Decoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripReportAlloc(b *testing.B) {
	m := benchReport()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := proto.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := proto.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripReportReuse(b *testing.B) {
	m := benchReport()
	var buf []byte
	var dec proto.Decoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = proto.AppendMarshal(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripBatch16Alloc(b *testing.B) {
	m := benchBatch(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := proto.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := proto.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripBatch16Reuse(b *testing.B) {
	m := benchBatch(16)
	var buf []byte
	var dec proto.Decoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = proto.AppendMarshal(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
