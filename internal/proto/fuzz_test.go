package proto

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the decoder. The invariants are
// the §5 safety argument applied to the wire: no input may panic the
// decoder, and anything it accepts must be a canonical message — re-encoding
// it reproduces the input bytes exactly, so a corrupted frame can never
// silently alias a different valid message. Run under `go test -fuzz` for
// coverage-guided exploration; the seed corpus alone runs in the normal
// test suite.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range sampleMsgs() {
		data, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations and a corrupted type byte seed the error paths.
		f.Add(data[:len(data)/2])
		mut := append([]byte{0xFF}, data[1:]...)
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{byte(TypeInstall), 6, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message %#v failed to re-marshal: %v", m, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical decode:\n in:  %x\n out: %x\n msg: %#v", data, out, m)
		}
	})
}

// FuzzCreateRoundTrip fuzzes the structured side: any Create that marshals
// must survive a round trip unchanged (field-for-field), and oversized
// strings must be rejected at Marshal, never truncated.
func FuzzCreateRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint32(1448), uint32(14480), uint32(0), "10.0.0.1:80", "10.0.0.2:80", "cubic")
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0xFFFFFFFF), "", "", "")
	f.Fuzz(func(t *testing.T, sid, mss, initCwnd, seq uint32, src, dst, alg string) {
		in := &Create{SID: sid, MSS: mss, InitCwnd: initCwnd, Seq: seq,
			SrcAddr: src, DstAddr: dst, Alg: alg}
		data, err := Marshal(in)
		if err != nil {
			if len(src) <= maxStringLen && len(dst) <= maxStringLen && len(alg) <= maxStringLen {
				t.Fatalf("in-bounds Create rejected: %v", err)
			}
			return
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("marshalled Create failed to decode: %v", err)
		}
		if !reflect.DeepEqual(in, got) {
			t.Fatalf("round trip mismatch:\n in:  %#v\n out: %#v", in, got)
		}
	})
}

// FuzzSnapshotRoundTrip fuzzes the snapshot codec from the structured side:
// any Snapshot that marshals must survive a round trip field-for-field, and
// out-of-bounds inputs must be rejected at Marshal, never truncated. The
// byte-level half of the contract (truncated or corrupt input errors, never
// panics, and accepted bytes are canonical) is covered by FuzzUnmarshal,
// whose seeds include snapshots via sampleMsgs.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint32(7), true, uint32(1448), uint32(14480), uint32(12), uint32(1),
		uint32(40), uint32(2), "10.0.0.1:80", "10.0.0.2:80", "cubic",
		[]byte{0xCC, 1, 0}, 14480.0, 2.5)
	f.Add(uint32(0), false, uint32(0), uint32(0), uint32(0), uint32(0),
		uint32(0), uint32(0), "", "", "", []byte(nil), 0.0, 0.0)
	f.Fuzz(func(t *testing.T, sid uint32, installed bool, mss, initCwnd,
		ctrlSeq, createSeq, reportSeq, urgentSeq uint32,
		src, dst, alg string, prog []byte, s0, s1 float64) {
		in := &Snapshot{SID: sid, Installed: installed, MSS: mss,
			InitCwnd: initCwnd, CtrlSeq: ctrlSeq, CreateSeq: createSeq,
			ReportSeq: reportSeq, UrgentSeq: urgentSeq,
			SrcAddr: src, DstAddr: dst, Alg: alg,
			Prog: prog, State: []float64{s0, s1}}
		data, err := Marshal(in)
		if err != nil {
			if len(src) <= maxStringLen && len(dst) <= maxStringLen &&
				len(alg) <= maxStringLen && len(prog) <= maxProgramSize {
				t.Fatalf("in-bounds Snapshot rejected: %v", err)
			}
			return
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("marshalled Snapshot failed to decode: %v", err)
		}
		gs, ok := got.(*Snapshot)
		if !ok {
			t.Fatalf("decoded %T, want *Snapshot", got)
		}
		if len(gs.Prog) == 0 {
			gs.Prog = nil
		}
		norm := *in
		if len(norm.Prog) == 0 {
			norm.Prog = nil
		}
		if !reflect.DeepEqual(&norm, gs) {
			// NaN state registers compare unequal under DeepEqual; accept a
			// bit-exact re-encode instead.
			re, err := Marshal(gs)
			if err != nil || !bytes.Equal(re, data) {
				t.Fatalf("round trip mismatch:\n in:  %#v\n out: %#v", in, gs)
			}
		}
	})
}
