package proto

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the decoder. The invariants are
// the §5 safety argument applied to the wire: no input may panic the
// decoder, and anything it accepts must be a canonical message — re-encoding
// it reproduces the input bytes exactly, so a corrupted frame can never
// silently alias a different valid message. Run under `go test -fuzz` for
// coverage-guided exploration; the seed corpus alone runs in the normal
// test suite.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range sampleMsgs() {
		data, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations and a corrupted type byte seed the error paths.
		f.Add(data[:len(data)/2])
		mut := append([]byte{0xFF}, data[1:]...)
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{byte(TypeInstall), 6, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message %#v failed to re-marshal: %v", m, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical decode:\n in:  %x\n out: %x\n msg: %#v", data, out, m)
		}
	})
}

// FuzzCreateRoundTrip fuzzes the structured side: any Create that marshals
// must survive a round trip unchanged (field-for-field), and oversized
// strings must be rejected at Marshal, never truncated.
func FuzzCreateRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint32(1448), uint32(14480), uint32(0), "10.0.0.1:80", "10.0.0.2:80", "cubic")
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0xFFFFFFFF), "", "", "")
	f.Fuzz(func(t *testing.T, sid, mss, initCwnd, seq uint32, src, dst, alg string) {
		in := &Create{SID: sid, MSS: mss, InitCwnd: initCwnd, Seq: seq,
			SrcAddr: src, DstAddr: dst, Alg: alg}
		data, err := Marshal(in)
		if err != nil {
			if len(src) <= maxStringLen && len(dst) <= maxStringLen && len(alg) <= maxStringLen {
				t.Fatalf("in-bounds Create rejected: %v", err)
			}
			return
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("marshalled Create failed to decode: %v", err)
		}
		if !reflect.DeepEqual(in, got) {
			t.Fatalf("round trip mismatch:\n in:  %#v\n out: %#v", in, got)
		}
	})
}
