package proto

// This file defines the HA replication messages: Snapshot carries one flow's
// congestion-control state from a primary agent to a warm standby, and
// Heartbeat is the supervision probe used for agent health scoring. Both ride
// the same wire codec as the datapath messages so the standby channel reuses
// the pooled-frame transports unchanged.

// SnapshotVersion is the only snapshot encoding this build reads or writes.
// A decoder seeing any other version errors out rather than guessing — a
// standby from a different build must not restore state it half-understands.
const SnapshotVersion = 1

// Snapshot flag bits (a decode rejecting unknown bits keeps the encoding
// canonical: exactly one byte sequence per message).
const (
	snapFlagClosed    = 1 << 0
	snapFlagInstalled = 1 << 1
)

// Snapshot is one flow's portable congestion-control state: everything a
// standby agent needs to resume fresh decisions for the flow without a
// datapath round trip. Identity and sequence-space fields mirror Create;
// Prog is the installed datapath program (so the restored flow interprets
// reports without re-deriving names); State is the algorithm's private
// registers, exported via core.SnapshotExporter in a stable order the same
// algorithm re-imports.
//
// A Snapshot with Closed set is a tombstone: the flow ended and the standby
// must forget it. Tombstones carry no program or state.
type Snapshot struct {
	SID    uint32
	Closed bool // tombstone: drop the flow at the standby
	// Installed mirrors whether the primary had sent the flow's program; a
	// restored flow must not re-enter the install handshake if so.
	Installed bool
	MSS       uint32
	InitCwnd  uint32 // bytes
	CtrlSeq   uint32 // last control sequence number the primary issued
	CreateSeq uint32 // Create dedup state (see core's createSeq)
	ReportSeq uint32 // last report sequence number accepted
	UrgentSeq uint32 // last urgent sequence number accepted
	SrcAddr   string
	DstAddr   string
	Alg       string
	// Prog is the serialized installed program. Decoded Snapshots alias the
	// input buffer here (the Install.Prog rule); retainers must Clone.
	Prog []byte
	// State is the algorithm's exported registers (cwnd, ssthresh, phase,
	// fold accumulators, ...) in the algorithm's own documented order.
	State []float64
}

// Heartbeat is a supervision probe. The supervisor (or a datapath liveness
// layer) sends one with its current clock in SentAt; a healthy agent echoes
// it verbatim, so the sender measures true request→response latency as
// now − SentAt with no pending-probe table. SID 0 probes the agent as a
// whole; a nonzero SID attributes the probe to one flow's handler path.
// Heartbeats are advisory like Backoff: they carry no decision and never
// count as control liveness.
type Heartbeat struct {
	SID    uint32
	Seq    uint32
	SentAt float64 // sender's clock at send time, seconds
}

func (m *Snapshot) Type() MsgType  { return TypeSnapshot }
func (m *Heartbeat) Type() MsgType { return TypeHeartbeat }

func (m *Snapshot) FlowSID() uint32  { return m.SID }
func (m *Heartbeat) FlowSID() uint32 { return m.SID }

// maxSnapStateLen bounds the exported register count; generous next to any
// real algorithm (BBR exports ~10) but small enough that a corrupt length
// cannot drive a large allocation.
const maxSnapStateLen = 256

func (m *Snapshot) flags() byte {
	var f byte
	if m.Closed {
		f |= snapFlagClosed
	}
	if m.Installed {
		f |= snapFlagInstalled
	}
	return f
}
