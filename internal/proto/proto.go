// Package proto defines the binary wire protocol spoken between CCP
// datapaths and the CCP agent (Figure 1's two arrows). It is deliberately
// narrow — the paper's thesis is that this small message set suffices for a
// wide range of congestion control algorithms:
//
//	datapath → agent: Create, Measurement, Vector, Urgent, Close, InstallErr
//	agent → datapath: Install, SetCwnd, SetRate, Backoff
//
// Messages are encoded little-endian with uvarint lengths; each Marshal
// produces exactly one self-contained message (the transport adds framing).
// Decoding is defensive: lengths are bounded by both a fixed cap and the
// remaining input, varints must be minimal (one canonical encoding per
// message), and truncated or malformed input returns an error, never a
// panic.
//
// Control messages (Install, SetCwnd, SetRate) and datapath events (Create,
// Urgent) carry a per-flow sequence number so that an unreliable channel —
// one that reorders or duplicates messages — cannot regress a newer decision
// or double-count an urgent event. Seq 0 means "unsequenced" and is always
// accepted; see SeqNewer for the comparison rule.
package proto

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MsgType discriminates wire messages.
type MsgType uint8

// Wire message types.
const (
	TypeCreate MsgType = iota + 1
	TypeMeasurement
	TypeVector
	TypeUrgent
	TypeClose
	TypeInstall
	TypeSetCwnd
	TypeSetRate
	TypeBatch
	TypeBackoff
	TypeSnapshot
	TypeHeartbeat
	TypeInstallErr
)

func (t MsgType) String() string {
	switch t {
	case TypeCreate:
		return "Create"
	case TypeMeasurement:
		return "Measurement"
	case TypeVector:
		return "Vector"
	case TypeUrgent:
		return "Urgent"
	case TypeClose:
		return "Close"
	case TypeInstall:
		return "Install"
	case TypeSetCwnd:
		return "SetCwnd"
	case TypeSetRate:
		return "SetRate"
	case TypeBatch:
		return "Batch"
	case TypeBackoff:
		return "Backoff"
	case TypeSnapshot:
		return "Snapshot"
	case TypeHeartbeat:
		return "Heartbeat"
	case TypeInstallErr:
		return "InstallErr"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Msg is any wire message.
type Msg interface {
	Type() MsgType
	// SID returns the socket/flow id the message concerns.
	FlowSID() uint32
}

// Create announces a new flow to the agent (triggering the algorithm's
// Init handler). A datapath re-sends Create to resynchronize after an agent
// restart; Seq then carries the highest control sequence number the datapath
// has applied, so the restarted agent resumes the flow's sequence space
// instead of starting below it.
type Create struct {
	SID      uint32
	MSS      uint32
	InitCwnd uint32 // bytes
	// Seq is the datapath's last applied control sequence number (0 for a
	// brand-new flow). The agent's flow state continues numbering above it.
	Seq     uint32
	SrcAddr string
	DstAddr string
	// Alg optionally requests a specific registered algorithm; empty means
	// the agent's default.
	Alg string
}

// Measurement is a batched fold/EWMA report: the values of the report
// fields, in the installed program's register order.
type Measurement struct {
	SID    uint32
	Seq    uint32 // report sequence number, per flow
	Fields []float64
}

// Vector is a batched per-packet report: NumFields values per packet,
// row-major, in the installed program's field order.
type Vector struct {
	SID       uint32
	Seq       uint32
	NumFields uint8
	Data      []float64
}

// Rows returns the number of packets in the vector.
func (v *Vector) Rows() int {
	if v.NumFields == 0 {
		return 0
	}
	return len(v.Data) / int(v.NumFields)
}

// Row returns the i-th packet's values (aliasing Data).
func (v *Vector) Row(i int) []float64 {
	n := int(v.NumFields)
	return v.Data[i*n : (i+1)*n]
}

// UrgentKind classifies urgent datapath events (§2.1): signals important
// enough to bypass batching.
type UrgentKind uint8

// Urgent event kinds.
const (
	UrgentDupAck  UrgentKind = iota + 1 // triple duplicate ACK (fast retransmit)
	UrgentTimeout                       // retransmission timeout
	UrgentECN                           // ECN mark (only if the program opts in)
)

func (k UrgentKind) String() string {
	switch k {
	case UrgentDupAck:
		return "dupack"
	case UrgentTimeout:
		return "timeout"
	case UrgentECN:
		return "ecn"
	}
	return fmt.Sprintf("urgent(%d)", uint8(k))
}

// Urgent reports an urgent event immediately, outside the batching schedule.
// Seq lets the agent discard a duplicated delivery, which would otherwise
// double-count a loss event.
type Urgent struct {
	SID   uint32
	Seq   uint32 // urgent sequence number, per flow (0 = unsequenced)
	Kind  UrgentKind
	Value float64 // bytes lost (dupack/timeout) or marks seen (ecn)
}

// Close announces flow teardown.
type Close struct {
	SID uint32
}

// Install carries a serialized lang.Program to the datapath. Install,
// SetCwnd, and SetRate share one per-flow control sequence space so a stale
// decision of any kind can never overwrite a newer one.
type Install struct {
	SID  uint32
	Seq  uint32 // control sequence number (0 = unsequenced)
	Prog []byte
}

// InstallErr is the datapath's reply to an Install it refused: the program
// failed to parse or was rejected by the install-time verifier. Seq echoes
// the Install's control sequence number so the agent can attribute the
// refusal; the previously installed program (or the default) stays in
// force, so a refused install degrades the flow, never breaks it.
type InstallErr struct {
	SID    uint32
	Seq    uint32 // the refused Install's control sequence number
	Reason string // human-readable cause, truncated to fit the wire format
}

// SetCwnd directly sets the congestion window (bytes). It is the degenerate
// control program for datapaths without program executors.
type SetCwnd struct {
	SID   uint32
	Seq   uint32 // control sequence number (0 = unsequenced)
	Bytes uint32
}

// SetRate directly sets the pacing rate (bytes/sec).
type SetRate struct {
	SID uint32
	Seq uint32 // control sequence number (0 = unsequenced)
	Bps float64
}

// Backoff asks a datapath to degrade its measurement frequency: the control
// plane is shedding load (a shard mailbox over its pressure watermark, or an
// agent policy throttling a chatty flow) and would rather receive fewer
// reports than drop them unpredictably. The datapath stretches its report
// waits by Factor and decays back to its programmed cadence on its own, so no
// recovery message is needed and a lost Backoff only means slightly later
// relief. Backoff is advisory: it never carries a window or rate decision and
// does not count as control liveness.
type Backoff struct {
	SID uint32
	// Factor multiplies the flow's report intervals. Values are clamped to
	// [1, the datapath's configured maximum]; the datapath keeps the largest
	// factor currently in force.
	Factor float64
}

// Batch carries several messages in one IPC frame — the §4 scaling answer:
// per-message transport cost (syscall, framing, wakeup) is amortized across
// every report coalesced within a batching interval, at the price of added
// control staleness for the non-first messages. Batches are a transport
// optimization, not a semantic grouping: receivers process the contained
// messages in order exactly as if each had arrived alone. Sub-messages may
// concern different flows; batches must not nest.
type Batch struct {
	Msgs []Msg
}

// SeqNewer reports whether sequence number a is newer than b under
// wraparound arithmetic (serial number comparison): a is newer when it lies
// at most 2^31-1 increments ahead of b. Sequence number 0 is reserved for
// "unsequenced" and should be special-cased by callers before comparing.
func SeqNewer(a, b uint32) bool { return int32(a-b) > 0 }

func (m *Create) Type() MsgType      { return TypeCreate }
func (m *Measurement) Type() MsgType { return TypeMeasurement }
func (m *Vector) Type() MsgType      { return TypeVector }
func (m *Urgent) Type() MsgType      { return TypeUrgent }
func (m *Close) Type() MsgType       { return TypeClose }
func (m *Install) Type() MsgType     { return TypeInstall }
func (m *SetCwnd) Type() MsgType     { return TypeSetCwnd }
func (m *SetRate) Type() MsgType     { return TypeSetRate }
func (m *Batch) Type() MsgType       { return TypeBatch }
func (m *Backoff) Type() MsgType     { return TypeBackoff }
func (m *InstallErr) Type() MsgType  { return TypeInstallErr }

func (m *Create) FlowSID() uint32      { return m.SID }
func (m *Measurement) FlowSID() uint32 { return m.SID }
func (m *Vector) FlowSID() uint32      { return m.SID }
func (m *Urgent) FlowSID() uint32      { return m.SID }
func (m *Close) FlowSID() uint32       { return m.SID }
func (m *Install) FlowSID() uint32     { return m.SID }
func (m *SetCwnd) FlowSID() uint32     { return m.SID }
func (m *SetRate) FlowSID() uint32     { return m.SID }
func (m *Backoff) FlowSID() uint32     { return m.SID }
func (m *InstallErr) FlowSID() uint32  { return m.SID }

// FlowSID returns 0: a batch spans flows, so per-flow routing must unpack
// it (see Split).
func (m *Batch) FlowSID() uint32 { return 0 }

// Split returns the messages m stands for: the contained messages for a
// Batch, or m itself for any other message. Receivers that route per flow
// call Split first so batches are transparent to them.
func Split(m Msg) []Msg {
	if b, ok := m.(*Batch); ok {
		return b.Msgs
	}
	return []Msg{m}
}

// Limits bound decoder allocations against malformed input.
const (
	maxStringLen   = 255
	maxFieldCount  = 1 << 12
	maxVectorLen   = 1 << 20
	maxProgramSize = 1 << 16
	maxBatchMsgs   = 1 << 10
)

// MaxBatchMsgs is the largest number of messages one Batch may carry.
const MaxBatchMsgs = maxBatchMsgs

// Marshal encodes m as one self-contained message.
func Marshal(m Msg) ([]byte, error) {
	return AppendMarshal(nil, m)
}

// AppendMarshal encodes m, appending to dst.
func AppendMarshal(dst []byte, m Msg) ([]byte, error) {
	b := append(dst, byte(m.Type()))
	switch v := m.(type) {
	case *Create:
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.MSS)
		b = binary.LittleEndian.AppendUint32(b, v.InitCwnd)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		var err error
		if b, err = appendStr(b, v.SrcAddr); err != nil {
			return nil, err
		}
		if b, err = appendStr(b, v.DstAddr); err != nil {
			return nil, err
		}
		if b, err = appendStr(b, v.Alg); err != nil {
			return nil, err
		}
	case *Measurement:
		if len(v.Fields) > maxFieldCount {
			return nil, fmt.Errorf("proto: too many fields (%d)", len(v.Fields))
		}
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		b = binary.AppendUvarint(b, uint64(len(v.Fields)))
		for _, f := range v.Fields {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
	case *Vector:
		if len(v.Data) > maxVectorLen {
			return nil, fmt.Errorf("proto: vector too large (%d)", len(v.Data))
		}
		if v.NumFields == 0 || len(v.Data)%int(v.NumFields) != 0 {
			return nil, fmt.Errorf("proto: vector data (%d) not a multiple of fields (%d)", len(v.Data), v.NumFields)
		}
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		b = append(b, v.NumFields)
		b = binary.AppendUvarint(b, uint64(len(v.Data)))
		for _, f := range v.Data {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
	case *Urgent:
		if v.Kind < UrgentDupAck || v.Kind > UrgentECN {
			return nil, fmt.Errorf("proto: invalid urgent kind %d", v.Kind)
		}
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		b = append(b, byte(v.Kind))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Value))
	case *Close:
		b = binary.LittleEndian.AppendUint32(b, v.SID)
	case *Install:
		if len(v.Prog) > maxProgramSize {
			return nil, fmt.Errorf("proto: program too large (%d bytes)", len(v.Prog))
		}
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		b = binary.AppendUvarint(b, uint64(len(v.Prog)))
		b = append(b, v.Prog...)
	case *SetCwnd:
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		b = binary.LittleEndian.AppendUint32(b, v.Bytes)
	case *SetRate:
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Bps))
	case *Backoff:
		if v.Factor < 1 || v.Factor > 1e6 || v.Factor != v.Factor {
			return nil, fmt.Errorf("proto: invalid backoff factor %v", v.Factor)
		}
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Factor))
	case *Snapshot:
		if len(v.Prog) > maxProgramSize {
			return nil, fmt.Errorf("proto: snapshot program too large (%d bytes)", len(v.Prog))
		}
		if len(v.State) > maxSnapStateLen {
			return nil, fmt.Errorf("proto: snapshot state too large (%d registers)", len(v.State))
		}
		b = append(b, SnapshotVersion)
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = append(b, v.flags())
		b = binary.LittleEndian.AppendUint32(b, v.MSS)
		b = binary.LittleEndian.AppendUint32(b, v.InitCwnd)
		b = binary.LittleEndian.AppendUint32(b, v.CtrlSeq)
		b = binary.LittleEndian.AppendUint32(b, v.CreateSeq)
		b = binary.LittleEndian.AppendUint32(b, v.ReportSeq)
		b = binary.LittleEndian.AppendUint32(b, v.UrgentSeq)
		var err error
		if b, err = appendStr(b, v.SrcAddr); err != nil {
			return nil, err
		}
		if b, err = appendStr(b, v.DstAddr); err != nil {
			return nil, err
		}
		if b, err = appendStr(b, v.Alg); err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, uint64(len(v.Prog)))
		b = append(b, v.Prog...)
		b = binary.AppendUvarint(b, uint64(len(v.State)))
		for _, f := range v.State {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
	case *Heartbeat:
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.SentAt))
	case *InstallErr:
		b = binary.LittleEndian.AppendUint32(b, v.SID)
		b = binary.LittleEndian.AppendUint32(b, v.Seq)
		var err error
		if b, err = appendStr(b, v.Reason); err != nil {
			return nil, err
		}
	case *Batch:
		if len(v.Msgs) > maxBatchMsgs {
			return nil, fmt.Errorf("proto: batch too large (%d messages)", len(v.Msgs))
		}
		b = binary.AppendUvarint(b, uint64(len(v.Msgs)))
		for _, sub := range v.Msgs {
			if _, nested := sub.(*Batch); nested {
				return nil, fmt.Errorf("proto: nested batch")
			}
			// Encode the sub-message in place, then shift it right to make
			// room for its uvarint length prefix — no intermediate buffer.
			start := len(b)
			var err error
			if b, err = AppendMarshal(b, sub); err != nil {
				return nil, err
			}
			subLen := len(b) - start
			pl := uvarintLen(uint64(subLen))
			for i := 0; i < pl; i++ {
				b = append(b, 0)
			}
			copy(b[start+pl:], b[start:len(b)-pl])
			binary.PutUvarint(b[start:start+pl], uint64(subLen))
		}
	default:
		return nil, fmt.Errorf("proto: cannot marshal %T", m)
	}
	return b, nil
}

// Unmarshal decodes one message into freshly allocated structs, with one
// exception: Install.Prog aliases data (see Decoder for the rule). Receive
// loops that decode at high rates should hold a reusable Decoder instead.
func Unmarshal(data []byte) (Msg, error) {
	var dec Decoder
	return dec.Unmarshal(data)
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("proto: truncated message")
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.pos >= len(d.data) {
		d.fail()
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.pos+4 > len(d.data) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil || d.pos+8 > len(d.data) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

// length decodes a uvarint element count. It rejects non-minimal varint
// encodings (keeping the wire format canonical: one byte sequence per
// message) and counts whose payload could not fit in the remaining input, so
// a corrupt length can never drive an allocation larger than the message
// itself.
func (d *decoder) length(max, elemSize int) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 || v > uint64(max) || n != uvarintLen(v) {
		d.err = fmt.Errorf("proto: bad length")
		return 0
	}
	d.pos += n
	if int(v)*elemSize > len(d.data)-d.pos {
		d.fail()
		return 0
	}
	return int(v)
}

// uvarintLen returns the number of bytes of the minimal uvarint encoding
// of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// view returns the next n bytes aliasing the input (for sub-decoding that
// copies on its own terms).
func (d *decoder) view(n int) []byte {
	if d.err != nil || d.pos+n > len(d.data) {
		d.fail()
		return nil
	}
	out := d.data[d.pos : d.pos+n]
	d.pos += n
	return out
}

func (d *decoder) str() string {
	n := int(d.byte())
	if d.err != nil || d.pos+n > len(d.data) {
		d.fail()
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

// strInto decodes a length-prefixed string, returning prev unchanged when
// the wire bytes match it. A Decoder whose scratch element retains the
// previous decode's strings (flow identity fields repeat every snapshot)
// therefore reaches a zero-allocation steady state; the comparison itself
// does not allocate.
func (d *decoder) strInto(prev string) string {
	n := int(d.byte())
	if d.err != nil || d.pos+n > len(d.data) {
		d.fail()
		return ""
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	if string(b) == prev {
		return prev
	}
	return string(b)
}

func appendStr(b []byte, s string) ([]byte, error) {
	if len(s) > maxStringLen {
		return nil, fmt.Errorf("proto: string too long (%d)", len(s))
	}
	b = append(b, byte(len(s)))
	return append(b, s...), nil
}
