package proto

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMsgs() []Msg {
	return []Msg{
		&Create{SID: 7, MSS: 1460, InitCwnd: 14600, SrcAddr: "10.0.0.1:4242", DstAddr: "10.0.0.2:80", Alg: "cubic"},
		&Create{SID: 0},
		&Create{SID: 11, MSS: 1448, InitCwnd: 28960, Seq: 1042, Alg: "reno"}, // resync replay
		&Measurement{SID: 1, Seq: 99, Fields: []float64{0.01, 2.5e6, 1.25e6, 14600, 0, 0.25, 0.012}},
		&Measurement{SID: 2, Seq: 0, Fields: nil},
		&Vector{SID: 3, Seq: 5, NumFields: 3, Data: []float64{1, 2, 3, 4, 5, 6}},
		&Urgent{SID: 4, Seq: 1, Kind: UrgentDupAck, Value: 2920},
		&Urgent{SID: 4, Seq: 2, Kind: UrgentTimeout, Value: 14600},
		&Urgent{SID: 4, Kind: UrgentECN, Value: 3},
		&Close{SID: 5},
		&Install{SID: 6, Seq: 3, Prog: []byte{0xCC, 1, 0, 1, 0x14, 0}},
		&Install{SID: 6, Prog: nil},
		&SetCwnd{SID: 8, Seq: 7, Bytes: 29200},
		&SetRate{SID: 9, Seq: 8, Bps: 1.25e9},
		&Backoff{SID: 10, Factor: 4},
		&Backoff{SID: 10, Factor: 1},
		&Batch{Msgs: []Msg{
			&Measurement{SID: 1, Seq: 100, Fields: []float64{0.01, 1e6}},
			&Measurement{SID: 2, Seq: 3, Fields: []float64{0.02, 2e6}},
			&Urgent{SID: 1, Seq: 9, Kind: UrgentDupAck, Value: 1448},
		}},
		&Batch{},
		&Snapshot{SID: 12, Installed: true, MSS: 1448, InitCwnd: 14480,
			CtrlSeq: 77, CreateSeq: 3, ReportSeq: 200, UrgentSeq: 5,
			SrcAddr: "10.0.0.1:4242", DstAddr: "10.0.0.2:80", Alg: "cubic",
			Prog:  []byte{0xCC, 1, 0, 1, 0x14, 0},
			State: []float64{14480, 65535, 2.5, 0.01}},
		&Snapshot{SID: 13, Closed: true},
		&Heartbeat{SID: 0, Seq: 9, SentAt: 1.25},
		&InstallErr{SID: 14, Seq: 41, Reason: "verifier: rate write escapes [0, 1e12]"},
		&InstallErr{SID: 15},
	}
}

func TestRoundTripAll(t *testing.T) {
	for _, m := range sampleMsgs() {
		data, err := Marshal(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		// nil and empty slices compare unequal under DeepEqual; normalize.
		if v, ok := got.(*Measurement); ok && len(v.Fields) == 0 {
			v.Fields = nil
		}
		if v, ok := got.(*Install); ok && len(v.Prog) == 0 {
			v.Prog = nil
		}
		if v, ok := got.(*Snapshot); ok {
			if len(v.Prog) == 0 {
				v.Prog = nil
			}
			if len(v.State) == 0 {
				v.State = nil
			}
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\n in:  %#v\n out: %#v", m, got)
		}
	}
}

func TestTypeAndSID(t *testing.T) {
	wantTypes := []MsgType{
		TypeCreate, TypeCreate, TypeCreate, TypeMeasurement, TypeMeasurement,
		TypeVector, TypeUrgent, TypeUrgent, TypeUrgent, TypeClose, TypeInstall,
		TypeInstall, TypeSetCwnd, TypeSetRate, TypeBackoff, TypeBackoff,
		TypeBatch, TypeBatch, TypeSnapshot, TypeSnapshot, TypeHeartbeat,
		TypeInstallErr, TypeInstallErr,
	}
	for i, m := range sampleMsgs() {
		if m.Type() != wantTypes[i] {
			t.Errorf("msg %d: type=%v, want %v", i, m.Type(), wantTypes[i])
		}
	}
	if (&SetRate{SID: 42}).FlowSID() != 42 {
		t.Error("FlowSID wrong")
	}
}

func TestVectorRows(t *testing.T) {
	v := &Vector{NumFields: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	if v.Rows() != 2 {
		t.Fatalf("rows=%d", v.Rows())
	}
	r := v.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Fatalf("row=%v", r)
	}
	empty := &Vector{}
	if empty.Rows() != 0 {
		t.Fatal("empty vector rows != 0")
	}
}

func TestMarshalRejectsBadVectorShape(t *testing.T) {
	if _, err := Marshal(&Vector{NumFields: 3, Data: []float64{1, 2}}); err == nil {
		t.Fatal("ragged vector marshalled")
	}
	if _, err := Marshal(&Vector{NumFields: 0, Data: []float64{1}}); err == nil {
		t.Fatal("zero-field vector marshalled")
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	big := make([]float64, maxFieldCount+1)
	if _, err := Marshal(&Measurement{Fields: big}); err == nil {
		t.Fatal("oversized measurement marshalled")
	}
	bigProg := make([]byte, maxProgramSize+1)
	if _, err := Marshal(&Install{Prog: bigProg}); err == nil {
		t.Fatal("oversized program marshalled")
	}
	long := make([]byte, 300)
	if _, err := Marshal(&Create{SrcAddr: string(long)}); err == nil {
		t.Fatal("oversized string marshalled")
	}
}

func TestMarshalRejectsBadBackoffFactor(t *testing.T) {
	for _, f := range []float64{0, 0.5, -1, 1e7, math.NaN()} {
		if _, err := Marshal(&Backoff{SID: 1, Factor: f}); err == nil {
			t.Errorf("backoff factor %v marshalled", f)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                         // type 0 invalid
		{200},                       // unknown type
		{byte(TypeCreate)},          // truncated
		{byte(TypeSetCwnd), 1, 2},   // truncated u32
		{byte(TypeUrgent), 1, 2, 3}, // truncated
	}
	for _, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("Unmarshal(%v) succeeded", data)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	// An Install claiming more program bytes than the message holds must be
	// rejected before allocating, and a non-minimal varint length must not
	// decode (the encoding is canonical).
	hdr := []byte{byte(TypeInstall), 6, 0, 0, 0, 0, 0, 0, 0} // SID=6, Seq=0
	overclaim := append(append([]byte{}, hdr...), 0xFF, 0xFF, 0x03)
	if _, err := Unmarshal(overclaim); err == nil {
		t.Fatal("length beyond input accepted")
	}
	nonMinimal := append(append([]byte{}, hdr...), 0x81, 0x00, 0xCC) // len=1 in two bytes
	if _, err := Unmarshal(nonMinimal); err == nil {
		t.Fatal("non-minimal varint accepted")
	}
	minimal := append(append([]byte{}, hdr...), 0x01, 0xCC)
	if _, err := Unmarshal(minimal); err != nil {
		t.Fatalf("minimal encoding rejected: %v", err)
	}
	// An Urgent with an out-of-range kind is not a valid message.
	badKind, err := Marshal(&Urgent{SID: 1, Kind: UrgentDupAck})
	if err != nil {
		t.Fatal(err)
	}
	badKind[9] = 200 // kind byte follows SID+Seq
	if _, err := Unmarshal(badKind); err == nil {
		t.Fatal("invalid urgent kind accepted")
	}
	if _, err := Marshal(&Urgent{SID: 1, Kind: UrgentKind(99)}); err == nil {
		t.Fatal("invalid urgent kind marshalled")
	}
}

func TestSeqNewer(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{2, 1, true},
		{1, 2, false},
		{1, 1, false},
		{1, 0xFFFFFFFF, true},  // wraparound: 1 is newer than 2^32-1
		{0xFFFFFFFF, 1, false}, // and not vice versa
		{0x80000001, 1, false}, // half the space or more ahead: treated stale
	}
	for _, c := range cases {
		if got := SeqNewer(c.a, c.b); got != c.want {
			t.Errorf("SeqNewer(%d, %d)=%v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestUnmarshalTrailing(t *testing.T) {
	data, err := Marshal(&Close{SID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(data, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bases := sampleMsgs()
	for trial := 0; trial < 3000; trial++ {
		base, err := Marshal(bases[rng.Intn(len(bases))])
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 1+rng.Intn(5); k++ {
			base[rng.Intn(len(base))] = byte(rng.Intn(256))
		}
		if rng.Intn(3) == 0 {
			base = base[:rng.Intn(len(base)+1)]
		}
		_, _ = Unmarshal(base) // must not panic
	}
}

func TestQuickMeasurementRoundTrip(t *testing.T) {
	f := func(sid, seq uint32, fields []float64) bool {
		if len(fields) > maxFieldCount {
			return true
		}
		m := &Measurement{SID: sid, Seq: seq, Fields: fields}
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		gm := got.(*Measurement)
		if gm.SID != sid || gm.Seq != seq || len(gm.Fields) != len(fields) {
			return false
		}
		for i := range fields {
			// NaN != NaN; compare bit patterns via equality on both-NaN.
			if gm.Fields[i] != fields[i] && !(fields[i] != fields[i] && gm.Fields[i] != gm.Fields[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendMarshalAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	out, err := AppendMarshal(prefix, &Close{SID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAA || out[1] != 0xBB {
		t.Fatal("prefix clobbered")
	}
	if _, err := Unmarshal(out[2:]); err != nil {
		t.Fatal(err)
	}
}

func TestStringNames(t *testing.T) {
	if TypeMeasurement.String() != "Measurement" || UrgentTimeout.String() != "timeout" {
		t.Fatal("String names wrong")
	}
	if MsgType(99).String() == "" || UrgentKind(99).String() == "" {
		t.Fatal("unknown values should still format")
	}
}
