package proto

import (
	"reflect"
	"testing"
)

// These tests pin down the Clone contract the decoderalias analyzer assumes:
// a cloned message shares no memory with decoder scratch or the input
// buffer, so it stays valid across the next Unmarshal (and across mutation
// of the frame it was decoded from), while the un-cloned view does not.

func mustMarshal(t *testing.T, m Msg) []byte {
	t.Helper()
	b, err := Marshal(m)
	if err != nil {
		t.Fatalf("marshal %T: %v", m, err)
	}
	return b
}

func decodeWith(t *testing.T, dec *Decoder, b []byte) Msg {
	t.Helper()
	m, err := dec.Unmarshal(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return m
}

// Clone of a batch-of-reports decoded into scratch must survive the next
// Unmarshal on the same decoder; the raw view is recycled out from under us.
func TestCloneBatchSurvivesNextUnmarshal(t *testing.T) {
	frame1 := mustMarshal(t, &Batch{Msgs: []Msg{
		&Measurement{SID: 1, Seq: 10, Fields: []float64{1.5, 2.5, 3.5}},
		&Measurement{SID: 2, Seq: 20, Fields: []float64{4.5, 5.5}},
		&SetCwnd{SID: 3, Seq: 30, Bytes: 14480},
	}})
	frame2 := mustMarshal(t, &Batch{Msgs: []Msg{
		&Measurement{SID: 9, Seq: 90, Fields: []float64{-1, -2, -3}},
		&Measurement{SID: 8, Seq: 80, Fields: []float64{-4, -5}},
		&SetCwnd{SID: 7, Seq: 70, Bytes: 1},
	}})

	var dec Decoder
	// Warm the decoder so its scratch slices reach steady-state capacity;
	// views taken while the slabs are still growing can be orphaned by the
	// growth reallocation rather than recycled in place.
	decodeWith(t, &dec, frame1)
	raw := decodeWith(t, &dec, frame1).(*Batch)
	rawFirst := raw.Msgs[0].(*Measurement)
	clone := Clone(raw).(*Batch)

	// The clone must not share backing storage with the scratch view.
	cloneFirst := clone.Msgs[0].(*Measurement)
	if &cloneFirst.Fields[0] == &rawFirst.Fields[0] {
		t.Fatal("clone aliases decoder scratch Fields")
	}

	// Recycle the scratch: frame2 has the same shape, so the raw view's
	// backing arrays are overwritten in place.
	decodeWith(t, &dec, frame2)

	want := &Batch{Msgs: []Msg{
		&Measurement{SID: 1, Seq: 10, Fields: []float64{1.5, 2.5, 3.5}},
		&Measurement{SID: 2, Seq: 20, Fields: []float64{4.5, 5.5}},
		&SetCwnd{SID: 3, Seq: 30, Bytes: 14480},
	}}
	if !reflect.DeepEqual(clone, want) {
		t.Fatalf("clone corrupted by subsequent Unmarshal:\n got %+v\nwant %+v", clone, want)
	}

	// And the hazard is real: the un-cloned view now shows frame2's data.
	if rawFirst.SID == 1 && rawFirst.Seq == 10 {
		t.Fatal("scratch was not recycled; test proves nothing")
	}
}

// Install decodes with a zero-copy Prog that aliases the input buffer.
// Clone must copy it; the raw view must follow buffer mutation.
func TestCloneInstallSurvivesBufferMutation(t *testing.T) {
	prog := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	frame := mustMarshal(t, &Install{SID: 5, Seq: 2, Prog: prog})

	var dec Decoder
	raw := decodeWith(t, &dec, frame).(*Install)
	clone := Clone(raw).(*Install)

	// Overwrite the wire bytes in place, as a transport reusing its read
	// buffer (or a bufpool.Release under -tags debugpool) would.
	for i := range frame {
		frame[i] = 0xEE
	}

	if want := []byte{0xAA, 0xBB, 0xCC, 0xDD}; !reflect.DeepEqual(clone.Prog, want) {
		t.Fatalf("cloned Prog corrupted by buffer mutation: %x, want %x", clone.Prog, want)
	}
	if reflect.DeepEqual(raw.Prog, prog) {
		t.Fatal("raw Install.Prog does not alias the input buffer; zero-copy contract changed")
	}
}

// Clone of a deep/aliased message graph must be fully disjoint: mutating any
// slice reachable from the original must not show through the clone.
func TestCloneDeepDisjoint(t *testing.T) {
	orig := &Batch{Msgs: []Msg{
		&Measurement{SID: 1, Seq: 1, Fields: []float64{10, 20}},
		&Install{SID: 2, Seq: 3, Prog: []byte{1, 2, 3}},
		&Vector{SID: 3, Seq: 4, NumFields: 2, Data: []float64{1, 2, 3, 4}},
	}}
	clone := Clone(orig).(*Batch)

	orig.Msgs[0].(*Measurement).Fields[0] = -99
	orig.Msgs[1].(*Install).Prog[0] = 0xFF
	orig.Msgs[2].(*Vector).Data[3] = -1
	orig.Msgs[0] = &Close{SID: 42} // the Msgs slice itself must be copied too

	if got := clone.Msgs[0].(*Measurement).Fields[0]; got != 10 {
		t.Fatalf("clone.Fields shares storage with original (got %v)", got)
	}
	if got := clone.Msgs[1].(*Install).Prog[0]; got != 1 {
		t.Fatalf("clone.Prog shares storage with original (got %v)", got)
	}
	if got := clone.Msgs[2].(*Vector).Data[3]; got != 4 {
		t.Fatalf("clone.Data shares storage with original (got %v)", got)
	}
}
