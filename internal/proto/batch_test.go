package proto

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	in := &Batch{Msgs: []Msg{
		&Measurement{SID: 1, Seq: 1, Fields: []float64{0.01, 1e6, 2e6}},
		&Vector{SID: 2, Seq: 7, NumFields: 2, Data: []float64{1, 2, 3, 4}},
		&Create{SID: 3, MSS: 1448, InitCwnd: 14480, Alg: "reno"},
		&Close{SID: 4},
	}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n in:  %#v\n out: %#v", in, got)
	}
}

func TestBatchAmortizesFraming(t *testing.T) {
	// The point of batching: one frame of n reports must be smaller than n
	// frames of one report (shared type byte aside, the transport-level
	// framing the paper's §4 batching argument amortizes is per-message).
	report := &Measurement{SID: 1, Seq: 1, Fields: []float64{0.01, 1e6, 2e6, 14480, 0, 0, 0.01}}
	single, err := Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	batch := &Batch{}
	const n = 100
	for i := 0; i < n; i++ {
		batch.Msgs = append(batch.Msgs, report)
	}
	packed, err := Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= n*(len(single)+4) { // +4: the stream transport's frame header
		t.Fatalf("batch of %d is %d bytes, not smaller than %d unbatched frames (%d bytes)",
			n, len(packed), n, n*(len(single)+4))
	}
}

func TestBatchRejectsNesting(t *testing.T) {
	inner := &Batch{Msgs: []Msg{&Close{SID: 1}}}
	if _, err := Marshal(&Batch{Msgs: []Msg{inner}}); err == nil {
		t.Fatal("marshal accepted a nested batch")
	}
	// Craft the bytes directly: a batch whose single element is itself a
	// batch. The decoder must reject it rather than recurse.
	innerData, err := Marshal(inner)
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte{byte(TypeBatch)}
	raw = binary.AppendUvarint(raw, 1)
	raw = binary.AppendUvarint(raw, uint64(len(innerData)))
	raw = append(raw, innerData...)
	if _, err := Unmarshal(raw); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Fatalf("decoder accepted nested batch (err=%v)", err)
	}
}

func TestBatchRejectsOversize(t *testing.T) {
	b := &Batch{}
	for i := 0; i <= MaxBatchMsgs; i++ {
		b.Msgs = append(b.Msgs, &Close{SID: uint32(i)})
	}
	if _, err := Marshal(b); err == nil {
		t.Fatal("marshal accepted an oversized batch")
	}
	// A count that exceeds the cap must be rejected before allocation.
	raw := []byte{byte(TypeBatch)}
	raw = binary.AppendUvarint(raw, uint64(MaxBatchMsgs+1))
	if _, err := Unmarshal(raw); err == nil {
		t.Fatal("decoder accepted oversized batch count")
	}
}

func TestBatchRejectsTruncatedAndMalformedSub(t *testing.T) {
	good, err := Marshal(&Batch{Msgs: []Msg{
		&Measurement{SID: 1, Seq: 1, Fields: []float64{1, 2}},
		&Close{SID: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(good); cut++ {
		if _, err := Unmarshal(good[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d bytes", cut)
		}
	}
	// A sub-message with trailing garbage inside its length window must be
	// rejected (each sub-message must be exactly one canonical message).
	sub, err := Marshal(&Close{SID: 9})
	if err != nil {
		t.Fatal(err)
	}
	padded := append(append([]byte{}, sub...), 0xEE)
	raw := []byte{byte(TypeBatch)}
	raw = binary.AppendUvarint(raw, 1)
	raw = binary.AppendUvarint(raw, uint64(len(padded)))
	raw = append(raw, padded...)
	if _, err := Unmarshal(raw); err == nil {
		t.Fatal("accepted sub-message with trailing bytes")
	}
}

func TestBatchCanonicalEncoding(t *testing.T) {
	// The fuzz invariant, pinned deterministically: decode→encode is the
	// identity on batch frames.
	in := &Batch{Msgs: []Msg{
		&Measurement{SID: 5, Seq: 2, Fields: []float64{3.14}},
		&Urgent{SID: 5, Seq: 1, Kind: UrgentTimeout, Value: 1448},
	}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, out) {
		t.Fatalf("non-canonical batch:\n in:  %x\n out: %x", data, out)
	}
}

func TestSplit(t *testing.T) {
	m1, m2 := &Close{SID: 1}, &Close{SID: 2}
	got := Split(&Batch{Msgs: []Msg{m1, m2}})
	if len(got) != 2 || got[0] != Msg(m1) || got[1] != Msg(m2) {
		t.Fatalf("Split(batch)=%v", got)
	}
	single := Split(m1)
	if len(single) != 1 || single[0] != Msg(m1) {
		t.Fatalf("Split(single)=%v", single)
	}
	if got := Split(&Batch{}); len(got) != 0 {
		t.Fatalf("Split(empty batch)=%v", got)
	}
}
