package proto_test

import (
	"bytes"
	"testing"

	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/testenv"
)

// These tests pin the wire codec's zero-allocation steady state: AppendMarshal
// into a reused buffer and Decoder.Unmarshal into reused scratch must not
// touch the heap once warmed up. They are the regression harness for the
// pooled frame lifecycle — a change that reintroduces a per-message
// allocation fails here, not in a profile three PRs later.

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if testenv.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	fn() // warm scratch and buffer capacity outside the measured window
	if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
		t.Fatalf("%s allocated %.1f times per op, want 0", name, allocs)
	}
}

func TestAllocsReportRoundTrip(t *testing.T) {
	m := &proto.Measurement{
		SID: 7, Seq: 42,
		Fields: []float64{0.012, 1.2e6, 1.1e6, 2896, 0, 0, 0.013},
	}
	buf := make([]byte, 0, 256)
	var dec proto.Decoder
	var encErr, decErr error
	requireZeroAllocs(t, "report round trip", func() {
		var b []byte
		b, encErr = proto.AppendMarshal(buf[:0], m)
		if encErr != nil {
			return
		}
		_, decErr = dec.Unmarshal(b)
	})
	if encErr != nil || decErr != nil {
		t.Fatalf("round trip failed: enc=%v dec=%v", encErr, decErr)
	}
}

func TestAllocsSetCwndRoundTrip(t *testing.T) {
	m := &proto.SetCwnd{SID: 7, Seq: 9, Bytes: 144800}
	buf := make([]byte, 0, 64)
	var dec proto.Decoder
	var encErr, decErr error
	requireZeroAllocs(t, "setcwnd round trip", func() {
		var b []byte
		b, encErr = proto.AppendMarshal(buf[:0], m)
		if encErr != nil {
			return
		}
		_, decErr = dec.Unmarshal(b)
	})
	if encErr != nil || decErr != nil {
		t.Fatalf("round trip failed: enc=%v dec=%v", encErr, decErr)
	}
}

func TestAllocsBatchRoundTrip(t *testing.T) {
	msgs := make([]proto.Msg, 16)
	for i := range msgs {
		msgs[i] = &proto.Measurement{
			SID: uint32(i + 1), Seq: uint32(i + 1),
			Fields: []float64{0.01, 1e6, 1e6, 1448, 0, 0, 0.01},
		}
	}
	m := &proto.Batch{Msgs: msgs}
	var buf []byte // reassigned each run so grown capacity is kept
	var dec proto.Decoder
	var encErr, decErr error
	requireZeroAllocs(t, "batch round trip", func() {
		buf, encErr = proto.AppendMarshal(buf[:0], m)
		if encErr != nil {
			return
		}
		_, decErr = dec.Unmarshal(buf)
	})
	if encErr != nil || decErr != nil {
		t.Fatalf("round trip failed: enc=%v dec=%v", encErr, decErr)
	}
}

// TestAllocsSnapshotRoundTrip pins the HA replication path: a primary
// streaming periodic snapshots and a standby decoding them must not touch
// the heap per message once warmed up. The decoder's string interning
// (identity fields repeat every snapshot) is what makes the decode side
// zero-alloc; this is the regression test for it.
func TestAllocsSnapshotRoundTrip(t *testing.T) {
	m := &proto.Snapshot{
		SID: 7, Installed: true, MSS: 1448, InitCwnd: 14480,
		CtrlSeq: 93, CreateSeq: 2, ReportSeq: 1204, UrgentSeq: 3,
		SrcAddr: "10.0.0.1:4242", DstAddr: "10.0.0.2:80", Alg: "cubic",
		Prog:  []byte{0xCC, 1, 0, 1, 0x14, 0},
		State: []float64{14480, 65535, 2.5, 0.01, 1.2e6, 0, 0.25},
	}
	buf := make([]byte, 0, 256)
	var dec proto.Decoder
	var encErr, decErr error
	requireZeroAllocs(t, "snapshot round trip", func() {
		var b []byte
		b, encErr = proto.AppendMarshal(buf[:0], m)
		if encErr != nil {
			return
		}
		m.CtrlSeq++ // sequence advances between snapshots; identity repeats
		_, decErr = dec.Unmarshal(b)
	})
	if encErr != nil || decErr != nil {
		t.Fatalf("round trip failed: enc=%v dec=%v", encErr, decErr)
	}
}

// TestAllocsDecodeReuseIndependentResults checks that the zero-alloc reuse
// does not corrupt results: two decodes on the same Decoder yield values that
// match fresh decodes, message by message.
func TestAllocsDecodeReuseIndependentResults(t *testing.T) {
	a := &proto.Measurement{SID: 1, Seq: 1, Fields: []float64{1, 2, 3}}
	b := &proto.Measurement{SID: 2, Seq: 2, Fields: []float64{9, 8, 7, 6}}
	ab, err := proto.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := proto.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var dec proto.Decoder
	m1, err := dec.Unmarshal(ab)
	if err != nil {
		t.Fatal(err)
	}
	got1 := proto.Clone(m1).(*proto.Measurement)
	m2, err := dec.Unmarshal(bb)
	if err != nil {
		t.Fatal(err)
	}
	got2 := m2.(*proto.Measurement)
	if got1.SID != 1 || len(got1.Fields) != 3 || got1.Fields[2] != 3 {
		t.Fatalf("first decode corrupted by reuse: %+v", got1)
	}
	if got2.SID != 2 || len(got2.Fields) != 4 || got2.Fields[3] != 6 {
		t.Fatalf("second decode wrong: %+v", got2)
	}
}

// TestInstallProgAliasesInput documents the decoder's one deliberate aliasing
// choice: Install.Prog is a view of the input buffer, not a copy. Callers
// that outlive the buffer must Clone.
func TestInstallProgAliasesInput(t *testing.T) {
	m := &proto.Install{SID: 3, Seq: 1, Prog: []byte{1, 2, 3, 4}}
	data, err := proto.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var dec proto.Decoder
	got, err := dec.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	inst := got.(*proto.Install)
	cl := proto.Clone(got).(*proto.Install)
	for i := range data {
		data[i] = 0xAA
	}
	if bytes.Equal(inst.Prog, []byte{1, 2, 3, 4}) {
		t.Fatal("Install.Prog did not alias the input buffer; the zero-copy view was lost")
	}
	if !bytes.Equal(cl.Prog, []byte{1, 2, 3, 4}) {
		t.Fatalf("Clone aliased the input buffer: %v", cl.Prog)
	}
}

// FuzzDecoderAliasing decodes arbitrary bytes, deep-copies the result, then
// scribbles over the input buffer. The copy must match a pristine decode —
// i.e. Clone must sever every alias the scratch decoder keeps into the input
// (Install.Prog in particular). Messages are compared through their canonical
// re-encoding, which is insensitive to nil-versus-empty slice differences.
func FuzzDecoderAliasing(f *testing.F) {
	seed := []proto.Msg{
		&proto.Install{SID: 1, Seq: 2, Prog: []byte{9, 9, 9}},
		&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{1, 2, 3}},
		&proto.Vector{SID: 1, Seq: 1, NumFields: 1, Data: []float64{0.5, 0.25}},
		&proto.Batch{Msgs: []proto.Msg{
			&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{4}},
			&proto.Install{SID: 2, Seq: 3, Prog: []byte{7, 7}},
		}},
	}
	for _, m := range seed {
		data, err := proto.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		aliased := append([]byte(nil), data...)
		var dec proto.Decoder
		m, err := dec.Unmarshal(aliased)
		if err != nil {
			return
		}
		cl := proto.Clone(m)
		for i := range aliased {
			aliased[i] ^= 0xFF
		}
		var ref proto.Decoder
		want, err := ref.Unmarshal(data)
		if err != nil {
			t.Fatalf("pristine re-decode failed: %v", err)
		}
		clBytes, err := proto.Marshal(cl)
		if err != nil {
			t.Fatalf("re-encode of clone failed: %v", err)
		}
		wantBytes, err := proto.Marshal(want)
		if err != nil {
			t.Fatalf("re-encode of pristine decode failed: %v", err)
		}
		if !bytes.Equal(clBytes, wantBytes) {
			t.Fatalf("clone diverged after input scribble:\nclone    %x\npristine %x", clBytes, wantBytes)
		}
	})
}
