module github.com/ccp-repro/ccp

go 1.22
