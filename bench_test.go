package ccp

// Benchmarks regenerating (or micro-benchmarking the machinery behind)
// every table and figure in the paper's evaluation. Figure/table-level
// benchmarks run a scaled simulation per iteration and report the
// experiment's headline metric via b.ReportMetric; the micro-benchmarks
// quantify the per-operation costs the design arguments rest on (per-ACK
// fold cost, IPC round trips, §2.2's cube-root comparison).
//
//	go test -bench=. -benchmem

import (
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/experiments"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/offload"
	"github.com/ccp-repro/ccp/internal/proto"
	ccpruntime "github.com/ccp-repro/ccp/internal/runtime"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// Table 1: instantiating every registered algorithm and capturing its
// installed programs (the registry probe behind the table).
func BenchmarkTable1AlgorithmCoverage(b *testing.B) {
	infos := algorithms.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, info := range infos {
			core.Describe(info.Factory, 1448)
		}
	}
	b.ReportMetric(float64(len(infos)), "algorithms")
}

// Table 2: per-operation cost of executing control-program expressions in
// the datapath VM (the price of one Rate/Cwnd evaluation).
func BenchmarkTable2ControlPrimitives(b *testing.B) {
	e := lang.Ite(lang.Lt(lang.V("pkt.rtt"), lang.C(0.05)),
		lang.Mul(lang.C(1.25), lang.V("rate")),
		lang.Mul(lang.C(0.75), lang.V("rate")))
	code, err := lang.Compile(e, lang.StdResolver(nil))
	if err != nil {
		b.Fatal(err)
	}
	vars := make([]float64, lang.VarTableSize(0))
	vars[lang.PktFieldSlot(lang.FieldRTT)] = 0.02
	vars[lang.FlowVarSlot(lang.FlowRate)] = 1e6
	stack := make([]float64, 0, code.MaxStack)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = code.Eval(vars, stack)
	}
	_ = sink
}

// §2.4: per-ACK cost of the fold path (bounded state in the datapath).
func BenchmarkFoldPerPacket(b *testing.B) {
	fold, err := lang.ParseFold(`
		(def (base_rtt 1e9) (delta 0))
		(:= base_rtt (min base_rtt pkt.rtt))
		(:= delta (if (< (/ (* (- pkt.rtt base_rtt) cwnd) (max base_rtt 1e-9)) 2)
		              (+ delta 1)
		              (if (> (/ (* (- pkt.rtt base_rtt) cwnd) (max base_rtt 1e-9)) 4)
		                  (- delta 1) delta)))`)
	if err != nil {
		b.Fatal(err)
	}
	cf, err := lang.CompileFold(fold)
	if err != nil {
		b.Fatal(err)
	}
	vars := make([]float64, lang.VarTableSize(cf.NumRegs()))
	cf.InitRegs(vars)
	vars[lang.PktFieldSlot(lang.FieldRTT)] = 0.012
	vars[lang.FlowVarSlot(lang.FlowCwnd)] = 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.Step(vars)
	}
}

// §2.4: per-ACK cost of the vector path (append + eventual copy/ship).
func BenchmarkVectorPerPacket(b *testing.B) {
	fields := []lang.Field{lang.FieldRTT, lang.FieldAcked, lang.FieldECN}
	vars := make([]float64, lang.VarTableSize(0))
	vars[lang.PktFieldSlot(lang.FieldRTT)] = 0.012
	vars[lang.PktFieldSlot(lang.FieldAcked)] = 1448
	vec := make([]float64, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(vec) >= 4096*len(fields) {
			vec = vec[:0] // "Report": ship and reset
		}
		for _, f := range fields {
			vec = append(vec, vars[lang.PktFieldSlot(f)])
		}
	}
}

// §2.2: the kernel's integer cube root vs. user-space floating point — the
// paper's ease-of-programming example, quantified.
func BenchmarkCubeRootKernelStyle(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = nativecc.CubeRoot(float64(i%4096) + 0.5)
	}
	_ = sink
}

func BenchmarkCubeRootFloat(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = math.Pow(float64(i%4096)+0.5, 1.0/3.0)
	}
	_ = sink
}

// Wire protocol: the cost of one measurement message round trip through
// the serializer (the per-report CPU cost in Figure 5's model).
func BenchmarkProtoMeasurementRoundTrip(b *testing.B) {
	m := &proto.Measurement{SID: 1, Seq: 42, Fields: []float64{0.01, 2.5e6, 1.2e6, 14480, 0, 0.1, 0.012}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := proto.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := proto.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// Marshal alone: the datapath-side cost of encoding one report.
func BenchmarkProtoMeasurementMarshal(b *testing.B) {
	m := &proto.Measurement{SID: 1, Seq: 42, Fields: []float64{0.01, 2.5e6, 1.2e6, 14480, 0, 0.1, 0.012}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

// Unmarshal alone: the agent-side cost of decoding one report (the
// canonical-form checks included).
func BenchmarkProtoMeasurementUnmarshal(b *testing.B) {
	m := &proto.Measurement{SID: 1, Seq: 42, Fields: []float64{0.01, 2.5e6, 1.2e6, 14480, 0, 0.1, 0.012}}
	data, err := proto.Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// Batched IPC: a 64-report frame through the serializer, reported per
// report — the amortization the §4 batching argument buys.
func BenchmarkProtoBatchRoundTrip64(b *testing.B) {
	batch := &proto.Batch{}
	for i := 0; i < 64; i++ {
		batch.Msgs = append(batch.Msgs, &proto.Measurement{
			SID: uint32(i%8 + 1), Seq: uint32(i + 1),
			Fields: []float64{0.01, 2.5e6, 1.2e6, 14480, 0, 0.1, 0.012},
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := proto.Marshal(batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := proto.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/report")
}

// Program installation: agent-side marshal + datapath-side unmarshal and
// validation of the §2.1 BBR pulse program.
func BenchmarkProgramInstall(b *testing.B) {
	prog := lang.NewProgram().
		MeasureEWMA().
		Rate(lang.Mul(lang.C(1.25), lang.V("rate"))).WaitRtts(1).Report().
		Rate(lang.Mul(lang.C(0.75), lang.V("rate"))).WaitRtts(1).Report().
		Rate(lang.V("rate")).WaitRtts(6).Report().
		MustBuild()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := lang.MarshalProgram(prog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lang.UnmarshalProgram(data); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 2: one IPC round trip per iteration over a Unix stream socket
// (idle CPU condition; the measured quantity behind the CDF).
func BenchmarkFig2IPCUnixStreamRTT(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.sock")
	ln, err := ipc.ListenUnix(path)
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ipc.Echo(ipc.NewStream(conn))
	}()
	client, err := ipc.DialUnix(path)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := client.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2IPCUnixgramRTT is the Netlink-substitute condition.
func BenchmarkFig2IPCUnixgramRTT(b *testing.B) {
	dir := b.TempDir()
	a, peer, err := ipc.DgramPair(filepath.Join(dir, "a.sock"), filepath.Join(dir, "b.sock"))
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	defer peer.Close()
	go ipc.Echo(peer)
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// figureBench runs a scaled single-flow simulation per iteration and
// reports utilization.
func figureBench(b *testing.B, ccp bool, alg string, native func() tcp.CongestionControl) {
	b.Helper()
	link := netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: 60000}
	dur := 5 * time.Second
	var util float64
	for i := 0; i < b.N; i++ {
		net := harness.New(harness.Config{Seed: int64(i + 1), Link: link})
		var flow *tcp.Flow
		if ccp {
			flow = net.AddCCPFlow(1, alg, tcp.Options{}).Flow
		} else {
			flow = net.AddNativeFlow(1, native(), tcp.Options{})
		}
		flow.Conn.Start()
		net.Run(dur)
		util = net.Utilization(dur)
	}
	b.ReportMetric(util*100, "util%")
}

// Figure 3: Cubic window dynamics, CCP vs native (scaled link).
func BenchmarkFig3CubicCCP(b *testing.B) { figureBench(b, true, "cubic", nil) }

func BenchmarkFig3CubicNative(b *testing.B) {
	figureBench(b, false, "", func() tcp.CongestionControl { return nativecc.NewCubic() })
}

// Figure 4: NewReno with a competing flow joining mid-run (scaled).
func BenchmarkFig4NewRenoCCP(b *testing.B) {
	link := netsim.LinkConfig{RateBps: 48e6, Delay: 10 * time.Millisecond, QueueBytes: 120000}
	var fair float64
	for i := 0; i < b.N; i++ {
		net := harness.New(harness.Config{Seed: int64(i + 1), Link: link})
		f1 := net.AddCCPFlow(1, "newreno", tcp.Options{})
		f2 := net.AddCCPFlow(2, "newreno", tcp.Options{})
		f1.Conn.Start()
		net.StartAt(f2.Flow, 3*time.Second)
		net.Run(10 * time.Second)
		d1 := float64(f1.Receiver.Delivered())
		d2 := float64(f2.Receiver.Delivered())
		fair = (d1 + d2) * (d1 + d2) / (2 * (d1*d1 + d2*d2))
	}
	b.ReportMetric(fair, "jain")
}

func BenchmarkFig4NewRenoNative(b *testing.B) {
	link := netsim.LinkConfig{RateBps: 48e6, Delay: 10 * time.Millisecond, QueueBytes: 120000}
	var fair float64
	for i := 0; i < b.N; i++ {
		net := harness.New(harness.Config{Seed: int64(i + 1), Link: link})
		f1 := net.AddNativeFlow(1, nativecc.NewNewReno(), tcp.Options{})
		f2 := net.AddNativeFlow(2, nativecc.NewNewReno(), tcp.Options{})
		f1.Conn.Start()
		net.StartAt(f1, 0)
		net.StartAt(f2, 3*time.Second)
		net.Run(10 * time.Second)
		d1 := float64(f1.Receiver.Delivered())
		d2 := float64(f2.Receiver.Delivered())
		fair = (d1 + d2) * (d1 + d2) / (2 * (d1*d1 + d2*d2))
	}
	b.ReportMetric(fair, "jain")
}

// Figure 5: one offload-grid cell per iteration (scaled link, TSO off —
// the interesting configuration), reporting achieved Gbit/s for CCP.
func BenchmarkFig5OffloadsTSOOffCCP(b *testing.B) {
	costs := offload.DefaultCosts()
	costs.SenderBudget /= 5
	costs.ReceiverBudget /= 5
	var achieved float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(experiments.Fig5Config{
			RateBps:  2e9,
			Duration: time.Second,
			Runs:     1,
			Costs:    costs,
			Seed:     int64(i + 1),
		})
		achieved = res.TSOOff[1].AchievedBps
	}
	b.ReportMetric(achieved/1e9, "Gbps")
}

// Agent dispatch: messages per second through the agent's demultiplexer —
// the user-space half of §2.3's CPU argument.
func BenchmarkAgentDispatch(b *testing.B) {
	agent, err := core.NewAgent(core.AgentConfig{
		Registry:   algorithms.NewRegistry(),
		DefaultAlg: "reno",
	})
	if err != nil {
		b.Fatal(err)
	}
	reply := func(proto.Msg) error { return nil }
	agent.HandleMessage(&proto.Create{SID: 1, MSS: 1448, InitCwnd: 14480}, reply)
	m := &proto.Measurement{SID: 1, Seq: 1, Fields: []float64{0.01, 1e6, 1e6, 14480, 0, 0, 0.01}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.HandleMessage(m, reply)
	}
}

// Sharded runtime dispatch: the same per-report path as BenchmarkAgentDispatch
// but through the flow-affine sharded executor, fed from parallel producers —
// the scaling story of the loadgen benchmark in microbenchmark form.
func BenchmarkRuntimeShardedDispatch(b *testing.B) {
	rt, err := ccpruntime.New(ccpruntime.Config{
		Shards: 4,
		Agent: core.AgentConfig{
			Registry:   algorithms.NewRegistry(),
			DefaultAlg: "reno",
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	reply := func(proto.Msg) error { return nil }
	const flows = 16
	for sid := uint32(1); sid <= flows; sid++ {
		rt.HandleMessage(&proto.Create{SID: sid, MSS: 1448, InitCwnd: 14480}, reply)
	}
	rt.Drain()
	var next uint32
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sid := atomic.AddUint32(&next, 1)%flows + 1
		seq := uint32(0)
		for pb.Next() {
			seq++
			rt.HandleMessage(&proto.Measurement{
				SID: sid, Seq: seq,
				Fields: []float64{0.01, 1e6, 1e6, 14480, 0, 0, 0.01},
			}, reply)
		}
	})
	b.StopTimer()
	rt.Drain()
}

// Simulator throughput: raw event rate, the cost floor of every experiment.
func BenchmarkSimulatorEvents(b *testing.B) {
	sim := netsim.New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.Schedule(time.Microsecond, tick)
		}
	}
	sim.Schedule(0, tick)
	b.ResetTimer()
	sim.Run(time.Duration(b.N+1) * time.Microsecond)
}

// End-to-end datapath: simulated packets per second through the full
// sender/receiver path with native congestion control.
func BenchmarkDatapathPacketRate(b *testing.B) {
	link := netsim.LinkConfig{RateBps: 1e9, Delay: time.Millisecond, QueueBytes: 1 << 20}
	net := harness.New(harness.Config{Link: link})
	f := net.AddNativeFlow(1, nativecc.NewCubic(), tcp.Options{})
	f.Conn.Start()
	b.ResetTimer()
	// Advance the simulation until b.N packets have been delivered.
	target := b.N
	step := 10 * time.Millisecond
	now := time.Duration(0)
	for f.Receiver.Stats().PktsRcvd < target {
		now += step
		net.Run(now)
	}
	b.ReportMetric(float64(f.Receiver.Stats().PktsRcvd)/now.Seconds(), "simpkts/s")
}

// TestBenchHarnessSanity keeps the root package from being test-free and
// pins the benchmark fixtures: cost-model invariants and the pulse program
// used across benches.
func TestBenchHarnessSanity(t *testing.T) {
	m := offload.DefaultCosts()
	if m.SenderBudget <= 0 || m.ReceiverBudget <= 0 {
		t.Fatal("cost model budgets must be positive")
	}
	if m.CostCCPPerAck >= m.CostCCNative {
		t.Fatal("the CCP per-ACK fold must be cheaper than a full in-kernel CC invocation")
	}
	prog := lang.NewProgram().
		MeasureEWMA().
		Rate(lang.Mul(lang.C(1.25), lang.V("rate"))).WaitRtts(1).Report().
		Rate(lang.Mul(lang.C(0.75), lang.V("rate"))).WaitRtts(1).Report().
		Rate(lang.V("rate")).WaitRtts(6).Report().
		MustBuild()
	data, err := lang.MarshalProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || len(data) > 1024 {
		t.Fatalf("pulse program wire size %d bytes", len(data))
	}
}
