// Package ccp is a from-scratch reproduction of "The Case for Moving
// Congestion Control Out of the Datapath" (HotNets 2017): a congestion
// control plane (CCP) that runs congestion control algorithms in a
// user-space agent, off the datapath, communicating through a narrow API of
// control programs, batched measurements, and urgent events.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable binaries are under cmd/, examples under examples/,
// and the benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation (see EXPERIMENTS.md for measured results).
package ccp
