// Customalg: write a new congestion control algorithm against the CCP API
// and deploy it without touching any datapath code — the paper's central
// promise ("ease of programming", §2.2).
//
// SlowAIMD below is a complete algorithm in ~40 lines of ordinary Go: it
// implements Table 3's three handlers and pushes decisions through the Flow
// handle. The same code would run over the simulated datapath used here,
// over the Unix-socket agent (cmd/ccp-agent), or over any future
// CCP-conformant datapath — write once, run everywhere.
//
//	go run ./examples/customalg
package main

import (
	"fmt"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// SlowAIMD is a deliberately gentle AIMD: half a segment of additive
// increase per RTT, and a mild ×0.8 decrease on loss. Floating point, no
// kernel programming, no per-datapath port.
type SlowAIMD struct {
	cwnd float64
	mss  float64
}

// Name identifies the algorithm to the agent.
func (s *SlowAIMD) Name() string { return "slow-aimd" }

// Init runs when the datapath announces the flow.
func (s *SlowAIMD) Init(f *core.Flow) {
	s.mss = float64(f.Info.MSS)
	s.cwnd = float64(f.Info.InitCwnd)
	f.SetCwnd(int(s.cwnd))
}

// OnMeasurement runs on each batched report (about once per RTT).
func (s *SlowAIMD) OnMeasurement(f *core.Flow, m core.Measurement) {
	if m.GetOr("acked", 0) <= 0 {
		return
	}
	s.cwnd += 0.5 * s.mss
	f.SetCwnd(int(s.cwnd))
}

// OnUrgent runs immediately on congestion signals.
func (s *SlowAIMD) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	s.cwnd *= 0.8
	if s.cwnd < 2*s.mss {
		s.cwnd = 2 * s.mss
	}
	f.SetCwnd(int(s.cwnd))
}

func main() {
	// Register the new algorithm alongside the bundled ones.
	reg := algorithms.NewRegistry()
	reg.Register("slow-aimd", func() core.Alg { return &SlowAIMD{} })

	// Race it against CCP Reno on a shared bottleneck.
	const rate = 48e6
	net := harness.New(harness.Config{
		Link: netsim.LinkConfig{
			RateBps:    rate,
			Delay:      5 * time.Millisecond,
			QueueBytes: harness.BDPBytes(rate, 10*time.Millisecond),
		},
		Registry:   reg,
		DefaultAlg: "reno",
	})
	mine := net.AddCCPFlow(1, "slow-aimd", tcp.Options{})
	reno := net.AddCCPFlow(2, "reno", tcp.Options{})
	mine.Conn.Start()
	reno.Conn.Start()

	const dur = 30 * time.Second
	net.Run(dur)

	mbps := func(f *harness.CCPFlow) float64 {
		return float64(f.Receiver.Delivered()) * 8 / dur.Seconds() / 1e6
	}
	fmt.Println("customalg — a new algorithm written against the CCP API in ~40 lines")
	fmt.Println()
	fmt.Printf("slow-aimd goodput: %6.2f Mbit/s (gentle: +0.5 MSS/RTT, ×0.8 on loss)\n", mbps(mine))
	fmt.Printf("ccp-reno  goodput: %6.2f Mbit/s (classic: +1 MSS/RTT, ×0.5 on loss)\n", mbps(reno))
	fmt.Printf("combined utilization: %.1f%%\n", net.Utilization(dur)*100)
	fmt.Println()
	fmt.Println("As expected, the gentler decrease lets slow-aimd hold a larger share;")
	fmt.Println("changing that policy is a one-line edit in user space.")
}
