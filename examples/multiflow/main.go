// Multiflow: different congestion control algorithms for different
// applications on one host, plus an agent-imposed policy — the scenario the
// paper's §2 motivates ("file downloads and video calls could use different
// transmission algorithms") and the agent's policy role ("per-connection
// maximum transmission rates").
//
// Three flows share one 96 Mbit/s bottleneck:
//
//   - a bulk file download running Cubic,
//
//   - a latency-sensitive video call running BBR (rate pulses, bounded queue),
//
//   - a background backup running Vegas, additionally capped at 10 Mbit/s
//     by agent policy.
//
//     go run ./examples/multiflow
package main

import (
	"fmt"
	"time"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

func main() {
	const rate = 96e6
	rtt := 20 * time.Millisecond

	// Policy: the backup flow (SID 3) may not exceed 10 Mbit/s. Policies
	// are applied by rewriting the algorithms' control programs, so the cap
	// holds inside the datapath, between agent decisions.
	policy := func(info core.FlowInfo) core.Policy {
		if info.SID == 3 {
			return core.Policy{MaxRateBps: 10e6 / 8, MaxCwndBytes: 64 * 1024}
		}
		return core.Policy{}
	}

	net := harness.New(harness.Config{
		Link: netsim.LinkConfig{
			RateBps:    rate,
			Delay:      rtt / 2,
			QueueBytes: harness.BDPBytes(rate, rtt),
		},
		Policy: policy,
	})

	download := net.AddCCPFlow(1, "cubic", tcp.Options{})
	video := net.AddCCPFlow(2, "bbr", tcp.Options{})
	backup := net.AddCCPFlow(3, "vegas", tcp.Options{})

	download.Conn.Start()
	video.Conn.Start()
	backup.Conn.Start()

	const dur = 30 * time.Second
	net.Run(dur)

	fmt.Println("multiflow — three applications, three algorithms, one agent")
	fmt.Println()
	fmt.Printf("%-22s %-8s %12s %14s\n", "flow", "alg", "goodput", "smoothed RTT")
	report := func(name, alg string, f *harness.CCPFlow) {
		fmt.Printf("%-22s %-8s %9.2f Mb/s %14v\n",
			name, alg,
			float64(f.Receiver.Delivered())*8/dur.Seconds()/1e6,
			f.Conn.SRTT())
	}
	report("file download", "cubic", download)
	report("video call", "bbr", video)
	report("backup (policy 10Mb)", "vegas", backup)
	fmt.Println()
	fmt.Printf("bottleneck utilization: %.1f%%\n", net.Utilization(dur)*100)
	fmt.Printf("flows tracked by agent: %d\n", net.Agent.FlowCount())
	fmt.Println()
	fmt.Println("The policy clamp is enforced in the datapath: the backup flow's")
	fmt.Println("installed program has every Rate/Cwnd expression wrapped in min(·, cap).")
	fmt.Println("(BBR's rate pulses dominating loss-based Cubic in a shallow buffer is")
	fmt.Println("faithful to real BBRv1 behaviour — another policy knob an operator")
	fmt.Println("could turn, in user space, without touching the datapath.)")
}
