// Quickstart: run one CCP-controlled flow over a simulated WAN path.
//
// This example assembles the whole architecture of the paper's Figure 1 in
// one process: a simulated TCP datapath, the CCP datapath runtime embedded
// in it, the user-space agent running the Cubic algorithm, and a modelled
// IPC channel between them — then prints the congestion window evolution
// and a run summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
	"github.com/ccp-repro/ccp/internal/trace"
)

func main() {
	// A 48 Mbit/s bottleneck with a 10 ms round trip and one
	// bandwidth-delay product of buffer — a typical WAN path.
	const (
		rate = 48e6
		rtt  = 10 * time.Millisecond
	)
	net := harness.New(harness.Config{
		Link: netsim.LinkConfig{
			RateBps:    rate,
			Delay:      rtt / 2,
			QueueBytes: harness.BDPBytes(rate, rtt),
		},
		IPCLatency: 25 * time.Microsecond, // ≈ measured Unix-socket RTT/2
	})

	// One flow whose congestion control runs in the user-space agent.
	flow := net.AddCCPFlow(1, "cubic", tcp.Options{})

	// Sample the congestion window as the simulation runs.
	cwnd := trace.NewSeries("cwnd", "bytes")
	var tick func()
	tick = func() {
		cwnd.Add(net.Sim.Now(), float64(flow.Conn.Cwnd()))
		net.Sim.Schedule(50*time.Millisecond, tick)
	}
	net.Sim.Schedule(0, tick)

	flow.Conn.Start()
	const dur = 20 * time.Second
	net.Run(dur)

	fmt.Println("CCP quickstart — Cubic congestion control running off the datapath")
	fmt.Println()
	fmt.Print(cwnd.ASCII(72, 12))
	fmt.Println()
	fmt.Printf("link utilization:   %.1f%%\n", net.Utilization(dur)*100)
	fmt.Printf("goodput:            %.1f Mbit/s\n",
		float64(flow.Receiver.Delivered())*8/dur.Seconds()/1e6)
	fmt.Printf("smoothed RTT:       %v (propagation %v)\n", flow.Conn.SRTT(), rtt)
	fmt.Printf("agent measurements: %d (batched ~2x per RTT)\n", net.Agent.Stats().Measurements)
	fmt.Printf("urgent events:      %d\n", net.Agent.Stats().Urgents)
	fmt.Printf("programs installed: %d\n", flow.DP.Stats().InstallsRecvd)
}
