// Socketagent: the deployment shape of the paper's Figure 1 — the agent and
// the datapath communicate over a *real* Unix domain socket using the real
// wire protocol (Create/Measurement/Urgent up, Install/SetCwnd/SetRate
// down), rather than the modelled in-simulator bridge.
//
// The datapath here is still the simulated transport (we have no kernel
// module to load), but every control message genuinely crosses a socket:
// the agent serves connections exactly as cmd/ccp-agent does, and the
// simulation advances in small wall-clock slices, applying agent messages
// between slices.
//
//	go run ./examples/socketagent
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

func main() {
	dir, err := os.MkdirTemp("", "ccp-socketagent-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sockPath := filepath.Join(dir, "ccp.sock")

	// The agent side: exactly what cmd/ccp-agent runs.
	agent, err := core.NewAgent(core.AgentConfig{
		Registry:   algorithms.NewRegistry(),
		DefaultAlg: "cubic",
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := ipc.ListenUnix(sockPath)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go agent.ServeTransport(ipc.NewStream(conn))
		}
	}()

	// The datapath side: a simulated flow whose CCP runtime speaks the wire
	// protocol over the socket.
	client, err := ipc.DialUnix(sockPath)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	sim := netsim.New(1)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	link := netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: 60000}
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)

	sent := 0
	dp := datapath.New(datapath.Config{
		SID:   1,
		Alg:   "cubic",
		Clock: sim,
		ToAgent: func(m proto.Msg) error {
			data, err := proto.Marshal(m)
			if err != nil {
				return err
			}
			sent++
			return client.Send(data)
		},
	})
	flow := tcp.NewFlow(sim, 1, path, fwd, rev, dp, tcp.Options{})

	// Pump agent replies into the datapath between simulation slices.
	replies := make(chan proto.Msg, 256)
	go func() {
		for {
			data, err := client.Recv()
			if err != nil {
				close(replies)
				return
			}
			m, err := proto.Unmarshal(data)
			if err != nil {
				continue
			}
			replies <- m
		}
	}()

	flow.Conn.Start()
	const (
		dur   = 10 * time.Second
		slice = 5 * time.Millisecond
	)
	received := 0
	for now := time.Duration(0); now < dur; now += slice {
		sim.Run(now + slice)
	drain:
		for {
			select {
			case m, ok := <-replies:
				if !ok {
					break drain
				}
				received++
				dp.Deliver(m)
			default:
				break drain
			}
		}
		// Let the agent goroutine breathe (it is truly concurrent).
		time.Sleep(50 * time.Microsecond)
	}

	fmt.Println("socketagent — agent and datapath speaking the real wire protocol over a Unix socket")
	fmt.Println()
	fmt.Printf("socket path:            %s\n", sockPath)
	fmt.Printf("messages to agent:      %d\n", sent)
	fmt.Printf("messages from agent:    %d (installs applied: %d)\n", received, dp.Stats().InstallsRecvd)
	fmt.Printf("goodput:                %.1f Mbit/s of %.0f available\n",
		float64(flow.Receiver.Delivered())*8/dur.Seconds()/1e6, link.RateBps/1e6)
	fmt.Printf("utilization:            %.1f%%\n", path.Forward.Utilization(dur)*100)
	fmt.Printf("agent flows / installs: %d flows, %d measurements\n",
		agent.Stats().FlowsCreated, agent.Stats().Measurements)
}
