// Command ipcbench reproduces Figure 2's measurement directly: the
// round-trip time of a small message between two *separate processes* over
// the shared-memory ring transport and Unix domain sockets, under an idle
// and a busy CPU.
//
// By default it forks itself as the echo-server process (true two-process
// IPC, like the paper's agent↔datapath split) and prints percentile rows
// plus a CDF. With -inproc the echo server runs as a goroutine instead.
//
// Usage:
//
//	ipcbench                        # all transports, idle + busy
//	ipcbench -transport shmring -samples 60000
//	ipcbench -cdf > cdf.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/ipc/shmring"
	"github.com/ccp-repro/ccp/internal/stats"
)

func main() {
	var (
		serveFlag = flag.String("serve", "", "internal: run as echo server on this socket/ring path")
		serveMode = flag.String("serve-mode", "", "internal: transport for -serve (unix|unixgram|shmring)")
		peer      = flag.String("peer", "", "internal: peer path for unixgram serve")

		transport = flag.String("transport", "all", "shmring | unix | unixgram | all")
		samples   = flag.Int("samples", 60000, "round trips per condition")
		warmup    = flag.Int("warmup", 500, "discarded warmup round trips")
		payload   = flag.Int("payload", 64, "message payload bytes")
		inproc    = flag.Bool("inproc", false, "echo server as a goroutine instead of a child process")
		cdfOut    = flag.Bool("cdf", false, "emit CSV CDF rows instead of a table")
	)
	flag.Parse()

	if *serveFlag != "" {
		runServer(*serveMode, *serveFlag, *peer)
		return
	}

	transports := []string{"shmring", "unixgram", "unix"}
	if *transport != "all" {
		transports = []string{*transport}
	}
	if *cdfOut {
		fmt.Println("transport,cpu,rtt_us,cdf")
	} else {
		fmt.Printf("Figure 2 (measured): IPC RTT between two processes, %d samples\n", *samples)
		fmt.Printf("%-10s %-6s %10s %10s %10s %10s %10s\n", "transport", "cpu", "p10", "p50", "p90", "p99", "p99.9")
	}
	for _, tr := range transports {
		for _, busy := range []bool{false, true} {
			s, err := measure(tr, *samples, *warmup, *payload, busy, *inproc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipcbench: %s busy=%v: %v\n", tr, busy, err)
				os.Exit(1)
			}
			cpu := "idle"
			if busy {
				cpu = "busy"
			}
			if *cdfOut {
				for _, p := range s.CDF(200) {
					fmt.Printf("%s,%s,%.3f,%.4f\n", tr, cpu, p.X/1000, p.F)
				}
			} else {
				fmt.Printf("%-10s %-6s %10v %10v %10v %10v %10v\n", tr, cpu,
					time.Duration(s.Percentile(10)), time.Duration(s.Percentile(50)),
					time.Duration(s.Percentile(90)), time.Duration(s.Percentile(99)),
					time.Duration(s.Percentile(99.9)))
			}
		}
	}
}

func measure(transport string, samples, warmup, payload int, busy, inproc bool) (*stats.Samples, error) {
	client, cleanup, err := setup(transport, inproc)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if busy {
		stop := ipc.BusyLoad(0)
		defer stop()
		time.Sleep(50 * time.Millisecond)
	}
	return ipc.MeasureRTT(client, samples, warmup, payload)
}

// setup builds the echo peer (child process unless inproc) and the client.
func setup(transport string, inproc bool) (ipc.Transport, func(), error) {
	dir, err := os.MkdirTemp("", "ipcbench-*")
	if err != nil {
		return nil, nil, err
	}
	cleanupDir := func() { os.RemoveAll(dir) }

	switch transport {
	case "shmring":
		// The benchmark side Creates the ring file so it exists before the
		// echo peer (goroutine or child process) Opens it; the ring itself
		// buffers any sends that race the peer's startup.
		ringPath := filepath.Join(dir, "ring")
		client, err := shmring.Create(ringPath, shmring.Options{})
		if err != nil {
			cleanupDir()
			return nil, nil, err
		}
		var stopServer func()
		if inproc {
			server, err := shmring.Open(ringPath, shmring.Options{})
			if err != nil {
				client.Close()
				cleanupDir()
				return nil, nil, err
			}
			go ipc.Echo(server)
			stopServer = func() { server.Close() }
		} else {
			cmd, err := forkServer("shmring", ringPath, "")
			if err != nil {
				client.Close()
				cleanupDir()
				return nil, nil, err
			}
			stopServer = func() { cmd.Process.Kill(); cmd.Wait() }
		}
		return client, func() { client.Close(); stopServer(); cleanupDir() }, nil

	case "unix":
		path := filepath.Join(dir, "echo.sock")
		var stopServer func()
		if inproc {
			ln, err := ipc.ListenUnix(path)
			if err != nil {
				cleanupDir()
				return nil, nil, err
			}
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				ipc.Echo(ipc.NewStream(conn))
			}()
			stopServer = func() { ln.Close() }
		} else {
			cmd, err := forkServer("unix", path, "")
			if err != nil {
				cleanupDir()
				return nil, nil, err
			}
			stopServer = func() { cmd.Process.Kill(); cmd.Wait() }
		}
		client, err := dialRetry(func() (ipc.Transport, error) { return ipc.DialUnix(path) })
		if err != nil {
			stopServer()
			cleanupDir()
			return nil, nil, err
		}
		return client, func() { client.Close(); stopServer(); cleanupDir() }, nil

	case "unixgram":
		serverPath := filepath.Join(dir, "server.sock")
		clientPath := filepath.Join(dir, "client.sock")
		var stopServer func()
		if inproc {
			server, err := ipc.BindDgram(serverPath, clientPath)
			if err != nil {
				cleanupDir()
				return nil, nil, err
			}
			go ipc.Echo(server)
			stopServer = func() { server.Close() }
		} else {
			cmd, err := forkServer("unixgram", serverPath, clientPath)
			if err != nil {
				cleanupDir()
				return nil, nil, err
			}
			stopServer = func() { cmd.Process.Kill(); cmd.Wait() }
		}
		client, err := dialRetry(func() (ipc.Transport, error) {
			// The client can bind before the server exists; Sends fail
			// until the server socket appears, so probe with a send.
			t, err := ipc.BindDgram(clientPath, serverPath)
			if err != nil {
				return nil, err
			}
			if err := t.Send([]byte{0}); err != nil {
				t.Close()
				os.Remove(clientPath)
				return nil, err
			}
			t.Recv() // drain the probe echo
			return t, nil
		})
		if err != nil {
			stopServer()
			cleanupDir()
			return nil, nil, err
		}
		return client, func() { client.Close(); stopServer(); cleanupDir() }, nil

	default:
		cleanupDir()
		return nil, nil, fmt.Errorf("unknown transport %q", transport)
	}
}

// forkServer re-executes this binary as the echo server.
func forkServer(mode, path, peer string) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-serve", path, "-serve-mode", mode, "-peer", peer)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// dialRetry retries connection setup while the server process starts up.
func dialRetry(dial func() (ipc.Transport, error)) (ipc.Transport, error) {
	var lastErr error
	for i := 0; i < 100; i++ {
		t, err := dial()
		if err == nil {
			return t, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, fmt.Errorf("server did not come up: %w", lastErr)
}

// runServer is the child-process echo loop.
func runServer(mode, path, peer string) {
	switch mode {
	case "shmring":
		// The parent Creates the ring before forking, so Open should
		// succeed immediately; retry briefly anyway in case the fork won
		// a race with the file becoming visible.
		var ep ipc.Transport
		for i := 0; ; i++ {
			t, err := shmring.Open(path, shmring.Options{})
			if err == nil {
				ep = t
				break
			}
			if i >= 100 {
				fmt.Fprintf(os.Stderr, "ipcbench server: %v\n", err)
				os.Exit(1)
			}
			time.Sleep(10 * time.Millisecond)
		}
		ipc.Echo(ep)
	case "unix":
		ln, err := ipc.ListenUnix(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench server: %v\n", err)
			os.Exit(1)
		}
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go ipc.Echo(ipc.NewStream(conn))
		}
	case "unixgram":
		t, err := ipc.BindDgram(path, peer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench server: %v\n", err)
			os.Exit(1)
		}
		ipc.Echo(t)
	default:
		fmt.Fprintf(os.Stderr, "ipcbench server: bad mode %q\n", mode)
		os.Exit(1)
	}
}
