// ccp-lint is the repo's invariant checker: a multichecker over the custom
// go/analysis-style passes in internal/analysis that enforce the hot-path
// ownership, aliasing, and determinism contracts the compiler cannot see
// (bufpool single-owner frames, proto.Decoder scratch aliasing, simulator
// determinism, mutex ordering, and — via the Install-gate verifier — the
// safety of statically-constructed datapath programs).
//
// Usage:
//
//	ccp-lint [-json] [-run regexp] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 0 when the tree is clean, 1 when any analyzer reports, and 2
// on load errors. Intentional, documented invariant breaks are allowlisted
// in source with a `//lint:ownership <reason>` comment on or directly
// above the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"github.com/ccp-repro/ccp/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (for CI annotation)")
	run := flag.String("run", "", "only run analyzers whose name matches this regexp")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccp-lint [-json] [-run regexp] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := analysis.All()
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccp-lint: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccp-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccp-lint: %v\n", err)
		os.Exit(2)
	}
	// The full suite also runs the //lint:ownership hygiene pass (reasonless
	// or stale directives); a -run filter skips it, since a partial analyzer
	// set cannot tell a stale directive from one excusing an unrun analyzer.
	var diags []analysis.Diagnostic
	if *run == "" {
		diags, err = analysis.RunAll(pkgs)
	} else {
		diags, err = analysis.Run(pkgs, analyzers)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccp-lint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "ccp-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) == 0 {
			fmt.Printf("ccp-lint: %d packages clean (%d analyzers)\n", len(pkgs), len(analyzers))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
