// Command ccp-hotpath measures the datapath hot paths this repo
// optimised — the wire codec, the simulator event queue, and per-ACK fold
// execution — in their before and after forms, and emits the comparison as
// JSON (BENCH_hotpath.json in the repo root is a committed run).
//
// "Before" lanes are executable history, not estimates. The package-level
// proto.Marshal/proto.Unmarshal pair deliberately preserves the original
// allocate-per-call behavior (fresh output buffer, throwaway decoder
// scratch), refheap below is a faithful reduction of the event queue's
// container/heap predecessor (one *event allocation per Schedule, interface
// boxing on every push/pop), and the fold lanes run the stack bytecode
// interpreter the datapath shipped with (still compiled in as
// lang.BackendStack, the differential-fuzz reference). "After" lanes are
// the paths production code now runs: AppendMarshal into a reused buffer
// with a per-reader Decoder, netsim.Sim's index-based 4-ary heap over a
// free-listed arena, and the register VM with superinstruction fusion.
//
// Usage:
//
//	ccp-hotpath                        # table to stdout
//	ccp-hotpath -json BENCH_hotpath.json
//	ccp-hotpath -benchtime 2s
package main

import (
	"container/heap"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
)

func main() {
	// Register the testing package's flags (test.benchtime in particular)
	// before parsing; testing.Benchmark reads them even outside `go test`.
	testing.Init()
	var (
		jsonOut   = flag.String("json", "", "write machine-readable results to this path")
		benchtime = flag.Duration("benchtime", time.Second, "target run time per benchmark lane")
	)
	flag.Parse()
	if err := run(*jsonOut, *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "ccp-hotpath: %v\n", err)
		os.Exit(1)
	}
}

// lane is one measured configuration of a hot path.
type lane struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	BPerOp    int64   `json:"b_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	Iters     int     `json:"iterations"`
	WallClock string  `json:"wall_clock"`
}

// pair is a before/after comparison over one hot path.
type pair struct {
	Path       string  `json:"path"`
	Before     lane    `json:"before"`
	After      lane    `json:"after"`
	Speedup    float64 `json:"speedup_ns"`
	ByteRatio  float64 `json:"byte_reduction"` // before B/op divided by after B/op; +Inf encoded as 0-alloc marker below
	AfterZero  bool    `json:"after_zero_alloc"`
	AllocDelta int64   `json:"allocs_removed_per_op"`
}

type report struct {
	Tool      string `json:"tool"`
	GitSHA    string `json:"git_sha,omitempty"`
	Benchtime string `json:"benchtime"`
	Pairs     []pair `json:"pairs"`
}

// gitSHA ties a committed BENCH_hotpath.json to the tree it measured (same
// stamp as ccp-loadgen's BENCH_scale.json); absent outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func run(jsonOut string, benchtime time.Duration) error {
	// testing.Benchmark honours the -test.benchtime flag, not a parameter;
	// inject it so one knob controls every lane.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		return err
	}

	rep := report{Tool: "ccp-hotpath", GitSHA: gitSHA(), Benchtime: benchtime.String()}
	rep.Pairs = append(rep.Pairs,
		compare("codec round trip (7-field report)", benchCodecAlloc, benchCodecReuse),
		compare("codec round trip (16-report batch)", benchBatchAlloc, benchBatchReuse),
		compare("event schedule+dispatch (depth 256)", benchEventHeapAlloc, benchEventArena),
		compare("fold step (Vegas, 2 updates)", foldLane(vegasFold(), lang.BackendStack), foldLane(vegasFold(), lang.BackendRegister)),
		compare("fold step (wide, 7 updates)", foldLane(wideFold(), lang.BackendStack), foldLane(wideFold(), lang.BackendRegister)),
	)

	for _, p := range rep.Pairs {
		fmt.Printf("%s\n", p.Path)
		fmt.Printf("  before: %10.1f ns/op  %6d B/op  %4d allocs/op\n",
			p.Before.NsPerOp, p.Before.BPerOp, p.Before.AllocsOp)
		fmt.Printf("  after:  %10.1f ns/op  %6d B/op  %4d allocs/op\n",
			p.After.NsPerOp, p.After.BPerOp, p.After.AllocsOp)
		if p.AfterZero {
			fmt.Printf("  %.2fx faster, %d B/op -> 0 (allocation-free)\n\n", p.Speedup, p.Before.BPerOp)
		} else {
			fmt.Printf("  %.2fx faster, %.1fx fewer bytes/op\n\n", p.Speedup, p.ByteRatio)
		}
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

func compare(path string, before, after func(*testing.B)) pair {
	b := measure(path+" [before]", before)
	a := measure(path+" [after]", after)
	p := pair{
		Path:       path,
		Before:     b,
		After:      a,
		AfterZero:  a.BPerOp == 0,
		AllocDelta: b.AllocsOp - a.AllocsOp,
	}
	if a.NsPerOp > 0 {
		p.Speedup = b.NsPerOp / a.NsPerOp
	}
	if a.BPerOp > 0 {
		p.ByteRatio = float64(b.BPerOp) / float64(a.BPerOp)
	}
	return p
}

func measure(name string, fn func(*testing.B)) lane {
	r := testing.Benchmark(fn)
	return lane{
		Name:      name,
		NsPerOp:   float64(r.T.Nanoseconds()) / float64(r.N),
		BPerOp:    r.AllocedBytesPerOp(),
		AllocsOp:  r.AllocsPerOp(),
		Iters:     r.N,
		WallClock: r.T.String(),
	}
}

// --- codec lanes ---

func hotReport() *proto.Measurement {
	return &proto.Measurement{
		SID: 7, Seq: 42,
		Fields: []float64{0.012, 1.2e6, 1.1e6, 2896, 0, 0, 0.013},
	}
}

func hotBatch() *proto.Batch {
	msgs := make([]proto.Msg, 16)
	for i := range msgs {
		msgs[i] = &proto.Measurement{
			SID: uint32(i + 1), Seq: uint32(i + 1),
			Fields: []float64{0.01, 1e6, 1e6, 1448, 0, 0, 0.01},
		}
	}
	return &proto.Batch{Msgs: msgs}
}

func benchCodecAlloc(b *testing.B) {
	m := hotReport()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := proto.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := proto.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCodecReuse(b *testing.B) {
	m := hotReport()
	var buf []byte
	var dec proto.Decoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = proto.AppendMarshal(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBatchAlloc(b *testing.B) {
	m := hotBatch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := proto.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := proto.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBatchReuse(b *testing.B) {
	m := hotBatch()
	var buf []byte
	var dec proto.Decoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = proto.AppendMarshal(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- event-queue lanes ---

// refheap mirrors the container/heap event queue netsim shipped with before
// the arena rewrite: one heap-allocated *refEvent per Schedule, ordered by
// (at, seq), with the standard library boxing each element through
// interface{} on Push and Pop.
type refEvent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type refheap []*refEvent

func (h refheap) Len() int { return len(h) }
func (h refheap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refheap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refheap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type refSim struct {
	now time.Duration
	seq uint64
	h   refheap
}

func (s *refSim) schedule(d time.Duration, fn func()) {
	heap.Push(&s.h, &refEvent{at: s.now + d, seq: s.seq, fn: fn})
	s.seq++
}

func (s *refSim) step() bool {
	if len(s.h) == 0 {
		return false
	}
	e := heap.Pop(&s.h).(*refEvent)
	s.now = e.at
	e.fn()
	return true
}

// --- fold-step lanes ---

// vegasFold is the paper's §2.4 example: a min-RTT accumulator plus a
// queue-occupancy trigger, the canonical small fold.
func vegasFold() *lang.FoldSpec {
	inQ := lang.Div(
		lang.Mul(lang.Sub(lang.V("pkt.rtt"), lang.V("base_rtt")), lang.V("cwnd")),
		lang.Max(lang.V("base_rtt"), lang.C(1e-9)))
	return &lang.FoldSpec{
		Regs: []lang.RegDef{
			{Name: "base_rtt", Init: 1e9},
			{Name: "delta", Init: 0},
		},
		Updates: []lang.Assign{
			{Dst: "base_rtt", E: lang.Min(lang.V("base_rtt"), lang.V("pkt.rtt"))},
			{Dst: "delta", E: lang.Ite(lang.Lt(inQ, lang.C(2)),
				lang.Add(lang.V("delta"), lang.C(1)),
				lang.Ite(lang.Gt(inQ, lang.C(4)), lang.Sub(lang.V("delta"), lang.C(1)), lang.V("delta")))},
		},
	}
}

// wideFold stresses a multi-update measurement program: EWMA smoothing,
// min/max accumulation, shared subexpressions, and select-of-comparison.
func wideFold() *lang.FoldSpec {
	excess := lang.Sub(lang.V("pkt.rtt"), lang.V("base_rtt"))
	return &lang.FoldSpec{
		Regs: []lang.RegDef{
			{Name: "base_rtt", Init: 1e9},
			{Name: "s_rtt", Init: 0},
			{Name: "max_rate", Init: 0},
			{Name: "acked_tot", Init: 0},
			{Name: "lost_tot", Init: 0},
			{Name: "q_delay", Init: 0},
			{Name: "cong", Init: 0},
		},
		Updates: []lang.Assign{
			{Dst: "base_rtt", E: lang.Min(lang.V("base_rtt"), lang.V("pkt.rtt"))},
			{Dst: "s_rtt", E: lang.Add(lang.Mul(lang.C(0.875), lang.V("s_rtt")), lang.Mul(lang.C(0.125), lang.V("pkt.rtt")))},
			{Dst: "max_rate", E: lang.Max(lang.V("max_rate"), lang.V("pkt.rcv_rate"))},
			{Dst: "acked_tot", E: lang.Add(lang.V("acked_tot"), lang.V("pkt.acked"))},
			{Dst: "lost_tot", E: lang.Add(lang.V("lost_tot"), lang.V("pkt.lost"))},
			{Dst: "q_delay", E: lang.Mul(excess, lang.V("pkt.rcv_rate"))},
			{Dst: "cong", E: lang.Ite(lang.Gt(excess, lang.C(0.01)), lang.Add(lang.V("cong"), lang.C(1)), lang.V("cong"))},
		},
	}
}

// foldLane builds a benchmark lane running one fold's Step on the given
// backend, with realistic packet fields and a FrameLen-sized table (the
// datapath's own sizing, so the register lane measures the in-place path).
func foldLane(spec *lang.FoldSpec, backend lang.Backend) func(*testing.B) {
	return func(b *testing.B) {
		cf, err := lang.CompileFoldBackend(spec, backend)
		if err != nil {
			b.Fatal(err)
		}
		vars := make([]float64, cf.FrameLen())
		cf.InitRegs(vars)
		vars[lang.PktFieldSlot(lang.FieldRTT)] = 0.05
		vars[lang.PktFieldSlot(lang.FieldAcked)] = 1448
		vars[lang.PktFieldSlot(lang.FieldRcvRate)] = 1.2e7
		vars[lang.FlowVarSlot(lang.FlowCwnd)] = 14480
		vars[lang.FlowVarSlot(lang.FlowMSS)] = 1448
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cf.Step(vars)
		}
	}
}

const eventDepth = 256

func benchEventHeapAlloc(b *testing.B) {
	s := &refSim{}
	var fn func()
	fn = func() { s.schedule(time.Microsecond, fn) }
	for i := 0; i < eventDepth; i++ {
		s.schedule(time.Duration(i)*time.Nanosecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

func benchEventArena(b *testing.B) {
	s := netsim.New(1)
	var fn func()
	fn = func() { s.Schedule(time.Microsecond, fn) }
	for i := 0; i < eventDepth; i++ {
		s.Schedule(time.Duration(i)*time.Nanosecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
