// Command ccp-sim runs the paper-reproduction experiments and prints their
// tables/series. Each experiment id matches DESIGN.md's experiment index.
//
// Usage:
//
//	ccp-sim -experiment fig3
//	ccp-sim -experiment fig3 -scale 0.1          # scale link rates for speed
//	ccp-sim -experiment all -out results/        # also write CSV series
//	ccp-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/experiments"
	"github.com/ccp-repro/ccp/internal/lang/absint"
	"github.com/ccp-repro/ccp/internal/trace"
)

var experimentOrder = []string{
	"table1", "table2", "table3",
	"fig2", "fig3", "fig4", "fig5",
	"ablation-batching", "ablation-lowrtt", "ablation-foldvec",
	"ablation-fallback", "ablation-urgent", "ablation-chaos",
	"ablation-agentchaos", "ablation-ha",
	"ext-smooth", "ext-synthesis", "ext-group",
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list), or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		outDir     = flag.String("out", "", "directory for CSV series output (optional)")
		scale      = flag.Float64("scale", 1.0, "scale link rates (e.g. 0.1 runs fig3 at 100 Mbit/s)")
		samples    = flag.Int("fig2-samples", 60000, "fig2: RTT samples per condition")
		verify     = flag.String("verify", "strict", "install-time program verification: strict|warn|off")
	)
	flag.Parse()

	vmode, err := absint.ParseMode(*verify)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccp-sim: %v\n", err)
		os.Exit(2)
	}
	datapath.SetDefaultVerify(vmode)

	if *list {
		for _, id := range experimentOrder {
			fmt.Println(id)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "ccp-sim: -experiment required (try -list)")
		os.Exit(2)
	}
	ids := []string{*experiment}
	if *experiment == "all" {
		ids = experimentOrder
	}
	for _, id := range ids {
		if err := run(id, *scale, *samples, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "ccp-sim: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(id string, scale float64, fig2Samples int, outDir string) error {
	start := time.Now()
	switch id {
	case "table1":
		fmt.Println(experiments.Table1())
	case "table2":
		fmt.Println(experiments.Table2())
	case "table3":
		fmt.Println(experiments.Table3())
	case "fig2":
		res, err := experiments.Fig2(experiments.Fig2Config{Samples: fig2Samples})
		if err != nil {
			return err
		}
		fmt.Println(res)
		if outDir != "" {
			if err := writeFig2CSV(res, outDir); err != nil {
				return err
			}
		}
	case "fig3":
		res := experiments.Fig3(experiments.Fig3Config{RateBps: 1e9 * scale})
		fmt.Println(res)
		if outDir != "" {
			if err := writeSeriesCSV(outDir, "fig3_cwnd.csv", 50*time.Millisecond,
				rename(res.CCPCwnd, "ccp_cwnd"), rename(res.NativeCwnd, "native_cwnd")); err != nil {
				return err
			}
		}
	case "fig4":
		res := experiments.Fig4(experiments.Fig4Config{RateBps: 96e6 * scale})
		fmt.Println(res)
		if outDir != "" {
			if err := writeSeriesCSV(outDir, "fig4_throughput.csv", 500*time.Millisecond,
				rename(res.CCP.Flow1, "ccp_flow1"), rename(res.CCP.Flow2, "ccp_flow2"),
				rename(res.Native.Flow1, "native_flow1"), rename(res.Native.Flow2, "native_flow2")); err != nil {
				return err
			}
		}
	case "fig5":
		fmt.Println(experiments.Fig5(experiments.Fig5Config{RateBps: 10e9 * scale}))
	case "ablation-batching":
		fmt.Println(experiments.AblBatching())
	case "ablation-lowrtt":
		fmt.Println(experiments.AblLowRTT())
	case "ablation-foldvec":
		fmt.Println(experiments.AblFoldVec())
	case "ablation-fallback":
		fmt.Println(experiments.AblFallback())
	case "ablation-urgent":
		fmt.Println(experiments.AblUrgent())
	case "ablation-chaos":
		fmt.Println(experiments.AblChaos())
	case "ablation-agentchaos":
		fmt.Println(experiments.AblAgentChaos())
	case "ablation-ha":
		fmt.Println(experiments.AblHA())
	case "ext-smooth":
		fmt.Println(experiments.AblSmooth())
	case "ext-synthesis":
		fmt.Println(experiments.AblSynthesis())
	case "ext-group":
		fmt.Println(experiments.AblGroup())
	default:
		return fmt.Errorf("unknown experiment %q (try -list)", id)
	}
	fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}

func rename(s *trace.Series, name string) *trace.Series {
	out := trace.NewSeries(name, s.Unit)
	for _, p := range s.Points() {
		out.Add(p.T, p.V)
	}
	return out
}

func writeSeriesCSV(dir, name string, step time.Duration, series ...*trace.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteMultiCSV(f, step, series...)
}

func writeFig2CSV(res experiments.Fig2Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig2_cdf.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "transport,cpu,rtt_us,cdf")
	for _, s := range res.Series {
		cpu := "idle"
		if s.Busy {
			cpu = "busy"
		}
		for _, p := range s.Samples.CDF(200) {
			fmt.Fprintf(f, "%s,%s,%.3f,%.4f\n", s.Transport, cpu, p.X/1000, p.F)
		}
	}
	return nil
}
