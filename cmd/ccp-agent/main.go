// Command ccp-agent is the stand-alone user-space congestion control plane
// of Figure 1: it listens on a Unix socket, speaks the CCP wire protocol,
// and runs one algorithm instance per flow for any connecting datapath.
//
// Usage:
//
//	ccp-agent -listen /tmp/ccp.sock -default-alg cubic
//	ccp-agent -list-algs
//	ccp-agent -listen /tmp/ccp.sock -max-rate-mbps 100   # per-flow policy
//
// High availability (see DESIGN.md §10): a primary replicates per-flow
// snapshots to a warm standby, which promotes itself into a live agent when
// the replication stream drops:
//
//	ccp-agent -listen /tmp/ccp-standby.sock -standby
//	ccp-agent -listen /tmp/ccp.sock -replicate /tmp/ccp-standby.sock
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/lang/absint"
	"github.com/ccp-repro/ccp/internal/supervise"
)

func main() {
	var (
		listen     = flag.String("listen", "/tmp/ccp.sock", "Unix socket path to listen on")
		defaultAlg = flag.String("default-alg", "cubic", "algorithm for flows that don't request one")
		maxRate    = flag.Float64("max-rate-mbps", 0, "per-flow max rate policy in Mbit/s (0 = none)")
		maxCwnd    = flag.Int("max-cwnd-kb", 0, "per-flow max cwnd policy in KiB (0 = none)")
		listAlgs   = flag.Bool("list-algs", false, "list registered algorithms and exit")
		verbose    = flag.Bool("v", false, "log per-flow activity")
		standby    = flag.Bool("standby", false,
			"run as a warm standby: consume snapshot replication on the listen socket, promote when the primary's stream drops")
		replicateTo = flag.String("replicate", "",
			"standby socket to replicate per-flow snapshots to (\"\" = no replication)")
		verifyFlag     = flag.String("verify", "off", "agent-side pre-flight program verification: strict|warn|off")
		replicateEvery = flag.Duration("replicate-interval", 50*time.Millisecond,
			"snapshot replication period (with -replicate)")
	)
	flag.Parse()

	reg := algorithms.NewRegistry()
	if *listAlgs {
		for _, name := range reg.Names() {
			fmt.Println(name)
		}
		return
	}

	var policy core.PolicyFunc
	if *maxRate > 0 || *maxCwnd > 0 {
		policy = func(info core.FlowInfo) core.Policy {
			return core.Policy{
				MaxRateBps:   *maxRate * 1e6 / 8,
				MaxCwndBytes: *maxCwnd * 1024,
			}
		}
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	vmode, err := absint.ParseMode(*verifyFlag)
	if err != nil {
		log.Fatalf("ccp-agent: %v", err)
	}
	agentCfg := core.AgentConfig{
		Registry:   reg,
		DefaultAlg: *defaultAlg,
		Policy:     policy,
		Logf:       logf,
		Verify:     vmode,
	}

	os.Remove(*listen)
	ln, err := ipc.ListenUnix(*listen)
	if err != nil {
		log.Fatalf("ccp-agent: listen %s: %v", *listen, err)
	}
	defer ln.Close()
	defer os.Remove(*listen)

	var agent *core.Agent
	if *standby {
		agent = runStandby(ln, agentCfg)
	} else {
		agent, err = core.NewAgent(agentCfg)
		if err != nil {
			log.Fatalf("ccp-agent: %v", err)
		}
	}
	if *replicateTo != "" {
		go replicate(agent, *replicateTo, *replicateEvery)
	}
	log.Printf("ccp-agent: listening on %s (default algorithm %q)", *listen, *defaultAlg)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		ln.Close()
		os.Remove(*listen)
		os.Exit(0)
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("ccp-agent: accept: %v", err)
			return
		}
		if *verbose {
			log.Printf("ccp-agent: datapath connected")
		}
		go func() {
			t := ipc.NewStream(conn)
			if err := agent.ServeTransport(t); err != nil && *verbose {
				log.Printf("ccp-agent: datapath disconnected: %v", err)
			}
			t.Close()
		}()
	}
}

// runStandby holds the process in warm-standby mode: replication streams
// from the primary are consumed one at a time on the listen socket, keeping
// the snapshot store current. When a stream drops with flow state held —
// the primary died — the store is promoted into a live agent, and main's
// accept loop takes over serving datapaths on the same socket.
func runStandby(ln *net.UnixListener, cfg core.AgentConfig) *core.Agent {
	sb := supervise.NewStandby()
	log.Printf("ccp-agent: warm standby, awaiting replication")
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("ccp-agent: standby accept: %v", err)
		}
		t := ipc.NewStream(conn)
		serveErr := sb.ServeTransport(t)
		t.Close()
		st := sb.Stats()
		log.Printf("ccp-agent: replication stream ended (%v): holding %d flows (applied %d, removed %d)",
			serveErr, sb.FlowCount(), st.Applied, st.Removed)
		if sb.FlowCount() > 0 {
			break
		}
	}
	agent, err := sb.Promote(cfg)
	if err != nil {
		log.Fatalf("ccp-agent: promote: %v", err)
	}
	st := agent.Stats()
	log.Printf("ccp-agent: promoted standby: %d flows restored (%d failed)",
		st.Restores, sb.Stats().RestoreErrors)
	return agent
}

// replicate pushes periodic snapshot passes to a standby's socket: a full
// pass on each fresh connection, incremental deltas after, redialing with a
// short backoff while the standby is down.
func replicate(agent *core.Agent, path string, every time.Duration) {
	for {
		t, err := ipc.DialUnix(path)
		if err != nil {
			time.Sleep(time.Second)
			continue
		}
		log.Printf("ccp-agent: replicating to %s every %v", path, every)
		full := true
		for {
			if _, err := supervise.Replicate(agent, full, t); err != nil {
				log.Printf("ccp-agent: replication to %s broken: %v", path, err)
				t.Close()
				break
			}
			full = false
			time.Sleep(every)
		}
	}
}
