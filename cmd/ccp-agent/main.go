// Command ccp-agent is the stand-alone user-space congestion control plane
// of Figure 1: it listens on a Unix socket, speaks the CCP wire protocol,
// and runs one algorithm instance per flow for any connecting datapath.
//
// Usage:
//
//	ccp-agent -listen /tmp/ccp.sock -default-alg cubic
//	ccp-agent -list-algs
//	ccp-agent -listen /tmp/ccp.sock -max-rate-mbps 100   # per-flow policy
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/ipc"
)

func main() {
	var (
		listen     = flag.String("listen", "/tmp/ccp.sock", "Unix socket path to listen on")
		defaultAlg = flag.String("default-alg", "cubic", "algorithm for flows that don't request one")
		maxRate    = flag.Float64("max-rate-mbps", 0, "per-flow max rate policy in Mbit/s (0 = none)")
		maxCwnd    = flag.Int("max-cwnd-kb", 0, "per-flow max cwnd policy in KiB (0 = none)")
		listAlgs   = flag.Bool("list-algs", false, "list registered algorithms and exit")
		verbose    = flag.Bool("v", false, "log per-flow activity")
	)
	flag.Parse()

	reg := algorithms.NewRegistry()
	if *listAlgs {
		for _, name := range reg.Names() {
			fmt.Println(name)
		}
		return
	}

	var policy core.PolicyFunc
	if *maxRate > 0 || *maxCwnd > 0 {
		policy = func(info core.FlowInfo) core.Policy {
			return core.Policy{
				MaxRateBps:   *maxRate * 1e6 / 8,
				MaxCwndBytes: *maxCwnd * 1024,
			}
		}
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	agent, err := core.NewAgent(core.AgentConfig{
		Registry:   reg,
		DefaultAlg: *defaultAlg,
		Policy:     policy,
		Logf:       logf,
	})
	if err != nil {
		log.Fatalf("ccp-agent: %v", err)
	}

	os.Remove(*listen)
	ln, err := ipc.ListenUnix(*listen)
	if err != nil {
		log.Fatalf("ccp-agent: listen %s: %v", *listen, err)
	}
	defer ln.Close()
	defer os.Remove(*listen)
	log.Printf("ccp-agent: listening on %s (default algorithm %q)", *listen, *defaultAlg)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		ln.Close()
		os.Remove(*listen)
		os.Exit(0)
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("ccp-agent: accept: %v", err)
			return
		}
		if *verbose {
			log.Printf("ccp-agent: datapath connected")
		}
		go func() {
			t := ipc.NewStream(conn)
			if err := agent.ServeTransport(t); err != nil && *verbose {
				log.Printf("ccp-agent: datapath disconnected: %v", err)
			}
			t.Close()
		}()
	}
}
