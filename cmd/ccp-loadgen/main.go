// Command ccp-loadgen runs the flow-scale benchmark: a closed-loop load
// generator drives 1→1000 flows through the sharded agent runtime over an
// in-process transport, measuring report throughput, report-to-decision
// latency, and the IPC message reduction report batching buys (the §4
// scaling argument, measured rather than simulated).
//
// Usage:
//
//	ccp-loadgen                          # default steps, table to stdout
//	ccp-loadgen -json BENCH_scale.json   # also write machine-readable output
//	ccp-loadgen -flows 1,10,100,1000 -reports 200 -shards 8 -interval 1ms
//	ccp-loadgen -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/experiments"
)

func main() {
	// Exit codes live only here: run's defers (profile flushes) must fire
	// before os.Exit, which skips them.
	os.Exit(run())
}

func run() int {
	var (
		flows      = flag.String("flows", "1,10,100,1000", "comma-separated flow-count steps")
		reports    = flag.Int("reports", 200, "closed-loop reports per flow per step")
		shards     = flag.Int("shards", 0, "runtime shards (0 = GOMAXPROCS)")
		interval   = flag.Duration("interval", time.Millisecond, "batch coalescing window")
		maxBatch   = flag.Int("max-batch", 64, "max reports per batch frame")
		seed       = flag.Int64("seed", 1, "seed for generated report contents")
		jsonOut    = flag.String("json", "", "write BENCH_scale.json-style output to this path")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark to this path")
		memProfile = flag.String("memprofile", "", "write a post-run heap profile to this path")
	)
	flag.Parse()

	counts, err := parseFlows(*flows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	res, err := experiments.Scale(experiments.ScaleConfig{
		FlowCounts:     counts,
		ReportsPerFlow: *reports,
		Shards:         *shards,
		BatchInterval:  *interval,
		MaxBatchMsgs:   *maxBatch,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
		return 1
	}
	res.GitSHA = gitSHA()
	fmt.Print(res.String())
	if *jsonOut != "" {
		if err := res.WriteJSON(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained, not transient, memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *memProfile)
	}
	return 0
}

// gitSHA stamps the benchmark output with the commit it ran at; empty when
// git or the repository is unavailable (the field is omitempty).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func parseFlows(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad flow count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no flow counts in %q", s)
	}
	return out, nil
}
