// Command ccp-loadgen runs the flow-scale benchmark: a closed-loop load
// generator drives the configured flow counts through the sharded agent
// runtime, measuring report throughput, report-to-decision latency, and the
// IPC message reduction report batching buys (the §4 scaling argument,
// measured rather than simulated).
//
// The -transport flag selects the lane: "chan" (the original in-process
// channel pair) or "shmring" (shared-memory rings striped over -conns
// connections, all served by one multiplexed agent goroutine). -outstanding
// bounds the reports in flight so the offered load stays constant while the
// flow table scales — the configuration behind the committed
// BENCH_scale.json 10k/50k/100k rows.
//
// Usage:
//
//	ccp-loadgen                          # default steps, table to stdout
//	ccp-loadgen -json BENCH_scale.json   # also write machine-readable output
//	ccp-loadgen -transport shmring -conns 4 -outstanding 256 \
//	    -flows 1000,10000,50000,100000 -reports 50 -timeout 5m
//	ccp-loadgen -flows 1,10 -reports 5 -json out.json -validate   # CI smoke
//	ccp-loadgen -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/experiments"
)

func main() {
	// Exit codes live only here: run's defers (profile flushes) must fire
	// before os.Exit, which skips them.
	os.Exit(run())
}

func run() int {
	var (
		flows       = flag.String("flows", "1,10,100,1000", "comma-separated flow-count steps")
		reports     = flag.Int("reports", 200, "closed-loop reports per flow per step")
		shards      = flag.Int("shards", 0, "runtime shards (0 = GOMAXPROCS)")
		transport   = flag.String("transport", "chan", "IPC lane: chan or shmring")
		conns       = flag.Int("conns", 0, "datapath connections, shmring only (0 = default 4)")
		outstanding = flag.Int("outstanding", 0, "max reports in flight across all flows (0 = one per flow)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-step wedge timeout")
		interval    = flag.Duration("interval", time.Millisecond, "batch coalescing window")
		maxBatch    = flag.Int("max-batch", 64, "max reports per batch frame")
		seed        = flag.Int64("seed", 1, "seed for generated report contents")
		gogc        = flag.Int("gogc", 0, "set GOGC for the run (0 = runtime default); on a small heap the default GC cadence injects ~1ms pauses into the latency tail")
		jsonOut     = flag.String("json", "", "write BENCH_scale.json-style output to this path")
		validate    = flag.Bool("validate", false, "re-read the -json output and verify it parses with the expected rows (CI smoke)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the benchmark to this path")
		memProfile  = flag.String("memprofile", "", "write a post-run heap profile to this path")
	)
	flag.Parse()

	counts, err := parseFlows(*flows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
		return 2
	}

	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	res, err := experiments.Scale(experiments.ScaleConfig{
		FlowCounts:     counts,
		ReportsPerFlow: *reports,
		Shards:         *shards,
		Transport:      *transport,
		Conns:          *conns,
		MaxOutstanding: *outstanding,
		BatchInterval:  *interval,
		MaxBatchMsgs:   *maxBatch,
		Seed:           *seed,
		Timeout:        *timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
		return 1
	}
	res.GitSHA = gitSHA()
	res.GOGC = *gogc
	fmt.Print(res.String())
	if *jsonOut != "" {
		if err := res.WriteJSON(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		if *validate {
			if err := validateJSON(*jsonOut, len(counts)); err != nil {
				fmt.Fprintf(os.Stderr, "ccp-loadgen: validation failed: %v\n", err)
				return 1
			}
			fmt.Printf("validated %s: %d rows\n", *jsonOut, len(counts))
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained, not transient, memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccp-loadgen: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *memProfile)
	}
	return 0
}

// validateJSON is the CI smoke check: the written file must parse back into
// a ScaleResult with one fully populated point per requested flow step. It
// guards the loadgen pipeline (flag plumbing, transport setup, closed loop,
// serialization) against silent rot without committing CI to a long run.
func validateJSON(path string, wantRows int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var res experiments.ScaleResult
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("%s does not parse: %w", path, err)
	}
	if len(res.Points) != wantRows {
		return fmt.Errorf("%s has %d rows, want %d", path, len(res.Points), wantRows)
	}
	for _, p := range res.Points {
		if p.Flows <= 0 || p.Reports <= 0 || p.ReportsPerSec <= 0 || p.LatencyP99Us <= 0 {
			return fmt.Errorf("row for %d flows has unpopulated fields: %+v", p.Flows, p)
		}
	}
	return nil
}

// gitSHA stamps the benchmark output with the commit it ran at; empty when
// git or the repository is unavailable (the field is omitempty).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func parseFlows(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad flow count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no flow counts in %q", s)
	}
	return out, nil
}
