# Convenience targets for the CCP reproduction. Everything is plain
# `go build`/`go test`; the Makefile just names the common workflows.

GO ?= go

.PHONY: all build test test-short bench bench-scale bench-scale-smoke bench-hotpath benchstat test-allocs test-debugpool test-race-robust test-ha vet lint verify-programs fmt check fuzz-smoke examples experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the real-time Figure 2 IPC measurement (several minutes of
# wall-clock echo round trips).
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...
	$(MAKE) bench-scale

# Flow-scale benchmark (1k→100k flows over shared-memory rings served by
# one multiplexed goroutine). The default seed is fixed, so BENCH_scale.json
# is deterministic up to machine-dependent timing fields. This is the
# committed configuration; expect a few minutes of wall clock at 100k flows.
bench-scale:
	$(GO) run ./cmd/ccp-loadgen -transport shmring -conns 4 -outstanding 256 \
		-interval 200us -gogc 800 -flows 1000,10000,50000,100000 -reports 20 \
		-timeout 600s -json BENCH_scale.json -validate

# CI smoke for the loadgen pipeline: tiny flow counts through the same
# shmring lane, then re-parse the JSON output and assert populated rows.
bench-scale-smoke:
	$(GO) run ./cmd/ccp-loadgen -transport shmring -conns 2 -outstanding 16 \
		-flows 1,16,64 -reports 10 -timeout 120s \
		-json /tmp/bench_scale_smoke.json -validate

# Hot-path before/after comparison (wire codec and simulator event queue);
# regenerates the committed BENCH_hotpath.json.
bench-hotpath:
	$(GO) run ./cmd/ccp-hotpath -json BENCH_hotpath.json

# Compares the current codec and event-queue benchmarks against the
# committed bench/baseline.txt. Requires the benchstat tool; skipped with a
# hint when it is not installed (no network access is assumed here).
benchstat:
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) test -run='^$$' -bench=. -benchmem -count=5 \
			./internal/proto ./internal/netsim ./internal/ipc/shmring ./internal/lang > bench/current.txt && \
		benchstat bench/baseline.txt bench/current.txt; \
	else \
		echo "benchstat not installed; skipping comparison."; \
		echo "install with: go install golang.org/x/perf/cmd/benchstat@latest"; \
	fi

# Allocation-regression tests: the hot paths (codec round trip, fold step,
# event schedule/dispatch) must stay at zero allocations per op. These skip
# themselves under -race (alloc counts are inflated), so `check` runs them
# in a separate non-race pass.
test-allocs:
	$(GO) test -run 'TestAllocs' -count=1 \
		./internal/proto ./internal/netsim ./internal/lang ./internal/ipc/shmring

# Robustness lane: the concurrent packages (sharded runtime, socket link,
# transports, fault injectors, datapath fail-safe) twice under the race
# detector. -count=2 defeats test caching and shakes out order-dependent
# state; CI runs this as its own job.
test-race-robust:
	$(GO) test -race -count=2 ./internal/runtime/ ./internal/harness/ \
		./internal/ipc/ ./internal/ipc/shmring/ ./internal/bridge/ \
		./internal/faults/ ./internal/datapath/ ./internal/supervise/

# High-availability lane: the supervise package (failure detector, warm
# standby, wire replication), the harness failover path and probe-gated
# fallback hysteresis, snapshot aggregation across the sharded runtime
# (including the restart-vs-shedding race shape), and the ablation-ha
# acceptance tests.
test-ha:
	$(GO) test -count=1 ./internal/supervise/
	$(GO) test -count=1 -run 'TestSlowAgentSingleFallbackCycle|TestProbesOffNoProbeTraffic|TestWarmStandbyFailoverBeatsFallback|TestPumpPausesWithDeadAgent' \
		./internal/harness/
	$(GO) test -count=1 -run 'TestSnapshotIntoAggregatesShards|TestRaceShardRestartDuringShedding' \
		./internal/runtime/
	$(GO) test -count=1 -run 'TestAblHA' ./internal/experiments/

vet:
	$(GO) vet ./...

# The repo's own invariant checker: five go/analysis-style passes
# (bufrelease, decoderalias, simdeterminism, lockorder, dslverify) over the
# whole tree. `go run ./cmd/ccp-lint -json ./...` emits machine-readable
# diagnostics for CI annotation; see DESIGN.md §8 and §13 for what each pass
# enforces.
lint:
	$(GO) run ./cmd/ccp-lint ./...

# Program-verifier gate: every statically-constructed datapath program in
# the tree must pass the absint Install-gate checks (the dslverify lint
# pass), every registered algorithm's Install-time programs must verify
# clean under the datapath profile, and the pinned rejection table must
# stay refused (the corpus tests in internal/lang/absint).
verify-programs:
	$(GO) run ./cmd/ccp-lint -run dslverify ./...
	$(GO) test -count=1 -run 'TestRegisteredAlgorithmsVerifyClean|TestRejectionTable' \
		./internal/lang/absint

# Runtime ownership checking for pooled frames: Release poisons the payload
# and records owner stacks, so double-Release and write-after-Release panic
# with the stacks of both parties. Runs the frame-handling packages' tests
# with the checker compiled in.
test-debugpool:
	$(GO) test -tags debugpool ./internal/bufpool ./internal/proto \
		./internal/ipc ./internal/ipc/shmring ./internal/harness \
		./internal/bridge ./internal/runtime ./internal/core

# Pre-merge gate: vet, the invariant analyzers, the race-enabled short test
# suite, the zero-alloc regression pass, the debugpool ownership lane, the
# program-verifier corpus, and a short fuzz pass over the wire-protocol
# decoders (the surface exposed to a faulty or corrupting channel).
# ~2 minutes total.
check: vet lint
	$(GO) test -race -short ./...
	$(MAKE) test-allocs
	$(MAKE) test-debugpool
	$(MAKE) test-ha
	$(MAKE) verify-programs
	$(MAKE) fuzz-smoke

# 10-second smoke of each proto fuzz target; `go test -fuzz` accepts one
# target per invocation. For a longer hunt, raise FUZZTIME.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzUnmarshal$$' -fuzztime=$(FUZZTIME) ./internal/proto
	$(GO) test -run='^$$' -fuzz='^FuzzCreateRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/proto
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/proto
	$(GO) test -run='^$$' -fuzz='^FuzzStackVsRegister$$' -fuzztime=$(FUZZTIME) ./internal/lang

fmt:
	gofmt -l -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/customalg
	$(GO) run ./examples/multiflow
	$(GO) run ./examples/socketagent

# Regenerates every table and figure (fig5 and the low-RTT sweep take a
# few minutes each); CSV series land in results/.
experiments:
	$(GO) run ./cmd/ccp-sim -experiment all -out results

clean:
	rm -rf results
